package antientropy

import (
	"fmt"
	"time"

	"pooldcs/internal/dcs"
	"pooldcs/internal/event"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/metrics"
	"pooldcs/internal/network"
	"pooldcs/internal/sim"
	"pooldcs/internal/stats"
)

// Store is one side of a replica pair: a digest-addressable view of the
// events a node holds for the replicated unit (a pool cell's
// primary/mirror copy, a GHT root's structured-replication share).
type Store interface {
	// Node is the network node holding this side.
	Node() int
	// AppendDigests appends the digest of every held event to buf.
	// Duplicates are allowed; the codec collapses them.
	AppendDigests(buf []uint64) []uint64
	// Fetch returns the event behind a digest.
	Fetch(digest uint64) (event.Event, bool)
	// Insert adds a missing event to this side.
	Insert(e event.Event)
	// Len returns the number of held events.
	Len() int
}

// Pair is one replicated unit to keep in sync. Label must be stable
// across rounds (it keys the divergence-window bookkeeping) and name the
// *role*, not the node, so re-homed replicas keep their history.
type Pair struct {
	Label   string
	Primary Store
	Replica Store
}

// PairSource enumerates a backend's replica pairs. The enumeration must
// be deterministic: same system state, same order.
type PairSource interface {
	ReplicaPairs() []Pair
}

// Session framing for the cost model, mirroring the dcs payload helpers:
// every frame carries a 16-byte header, coded symbols are SymbolBytes
// each, and a digest request lists 8-byte digests.
const sessionHeaderBytes = 16

func frameBytes(symbols int) int  { return sessionHeaderBytes + symbols*SymbolBytes }
func digestBytes(digests int) int { return sessionHeaderBytes + digests*8 }

// Config tunes the reconciler. The zero value selects the defaults.
type Config struct {
	// Period is the background round interval (default 5s).
	Period time.Duration
	// FirstBatch is the coded-symbol count of a session's opening frame
	// (default 1, so an in-sync pair confirms equality in one ~40-byte
	// frame). Batches double per frame up to MaxBatch (default 16).
	FirstBatch int
	MaxBatch   int
	// MaxSymbols bounds a session's rateless stream; past it the session
	// falls back to a full snapshot exchange (default 512).
	MaxSymbols int
	// Snapshot forces every session to the naive full-snapshot exchange —
	// the baseline the experiments compare rateless reconciliation against.
	Snapshot bool
}

func (c Config) period() time.Duration {
	if c.Period > 0 {
		return c.Period
	}
	return 5 * time.Second
}

func (c Config) firstBatch() int {
	if c.FirstBatch > 0 {
		return c.FirstBatch
	}
	return 1
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 16
}

func (c Config) maxSymbols() int {
	if c.MaxSymbols > 0 {
		return c.MaxSymbols
	}
	return 512
}

// pairState tracks a pair's divergence window between rounds.
type pairState struct {
	// lastSync is the last virtual time the pair was known equal.
	lastSync time.Duration
	// diverged marks a window opened by a repairing or aborted session;
	// divergedAt is the lastSync at that moment — the last instant the
	// replicas were provably in sync, an upper bound on when they split.
	diverged   bool
	divergedAt time.Duration
}

// Reconciler runs anti-entropy sessions between replica pairs as
// scheduled background traffic. Each round it walks every source's
// pairs and reconciles them over routed unicast (KindControl frames, so
// repair traffic never pollutes the data-path counters); a session that
// hits a dead or partitioned replica aborts gracefully and retries next
// round.
type Reconciler struct {
	sched  *sim.Scheduler
	net    *network.Network
	router *gpsr.Router
	cfg    Config
	srcs   []PairSource

	state map[string]*pairState

	pathBuf  []int
	bufA     []uint64
	bufB     []uint64
	eventBuf []event.Event

	sessions  uint64
	aborted   uint64
	fallbacks uint64
	symbols   uint64
	bytes     uint64
	moved     uint64
	conv      *stats.IntHistogram
	errs      []error

	running bool
}

// New builds a reconciler over the given pair sources. Call Start to
// begin background rounds, or RunRound to drive it manually.
func New(sched *sim.Scheduler, net *network.Network, router *gpsr.Router, cfg Config, srcs ...PairSource) *Reconciler {
	return &Reconciler{
		sched:  sched,
		net:    net,
		router: router,
		cfg:    cfg,
		srcs:   srcs,
		state:  make(map[string]*pairState),
		conv:   stats.NewIntHistogram(),
	}
}

// EnableMetrics registers the repair metric families on reg.
func (r *Reconciler) EnableMetrics(reg *metrics.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.CounterFunc("repair_sessions_total", "Completed anti-entropy reconciliation sessions.",
		func() float64 { return float64(r.sessions) })
	reg.CounterFunc("repair_sessions_aborted_total", "Reconciliation sessions aborted by unreachable replicas.",
		func() float64 { return float64(r.aborted) })
	reg.CounterFunc("repair_snapshot_fallbacks_total", "Rateless sessions that fell back to a full snapshot exchange.",
		func() float64 { return float64(r.fallbacks) })
	reg.CounterFunc("repair_symbols_total", "Coded symbols transmitted by reconciliation sessions.",
		func() float64 { return float64(r.symbols) })
	reg.CounterFunc("repair_bytes_total", "Payload bytes transmitted by reconciliation sessions.",
		func() float64 { return float64(r.bytes) })
	reg.CounterFunc("repair_events_moved_total", "Events copied between replicas by reconciliation.",
		func() float64 { return float64(r.moved) })
	reg.HistogramOf("repair_convergence_ms", "Divergence-window length closed per repairing session, milliseconds.", r.conv)
}

// Start schedules background rounds every Period of virtual time.
func (r *Reconciler) Start() {
	if r.running {
		return
	}
	r.running = true
	r.sched.After(r.cfg.period(), r.tick)
}

// Stop halts background rounds; pending ticks become no-ops.
func (r *Reconciler) Stop() { r.running = false }

// Kick schedules an immediate extra round — wired to recovery events so
// a rejoining node is repaired without waiting out the period.
func (r *Reconciler) Kick() {
	if !r.running {
		return
	}
	r.sched.After(0, func() {
		if r.running {
			r.RunRound()
		}
	})
}

func (r *Reconciler) tick() {
	if !r.running {
		return
	}
	r.RunRound()
	r.sched.After(r.cfg.period(), r.tick)
}

// RunRound reconciles every pair of every source once and returns the
// number of events moved.
func (r *Reconciler) RunRound() int {
	total := 0
	for _, src := range r.srcs {
		for _, p := range src.ReplicaPairs() {
			total += r.reconcile(p)
		}
	}
	return total
}

// Accessors for the experiment tables and tests.

// Sessions returns completed sessions.
func (r *Reconciler) Sessions() uint64 { return r.sessions }

// Aborted returns sessions abandoned on unreachable replicas.
func (r *Reconciler) Aborted() uint64 { return r.aborted }

// Fallbacks returns rateless sessions that fell back to snapshots.
func (r *Reconciler) Fallbacks() uint64 { return r.fallbacks }

// Symbols returns coded symbols transmitted.
func (r *Reconciler) Symbols() uint64 { return r.symbols }

// Bytes returns payload bytes transmitted by sessions.
func (r *Reconciler) Bytes() uint64 { return r.bytes }

// EventsMoved returns events copied between replicas.
func (r *Reconciler) EventsMoved() uint64 { return r.moved }

// Convergence returns the divergence-window histogram (milliseconds).
func (r *Reconciler) Convergence() *stats.IntHistogram { return r.conv }

// Errs returns non-degradable session failures; a correct deployment
// never produces any.
func (r *Reconciler) Errs() []error { return r.errs }

func (r *Reconciler) stateOf(label string) *pairState {
	st, ok := r.state[label]
	if !ok {
		st = &pairState{}
		r.state[label] = st
	}
	return st
}

// reconcile runs one session and settles the pair's divergence window:
// a session that moved events (or aborted) opens the window at the last
// provably-in-sync instant; a session that completed closes it and
// observes its length in the convergence histogram.
func (r *Reconciler) reconcile(p Pair) int {
	st := r.stateOf(p.Label)
	var moved int
	var err error
	if r.cfg.Snapshot {
		moved, err = r.snapshotSession(p)
	} else {
		moved, err = r.ratelessSession(p)
	}
	r.moved += uint64(moved)
	if err != nil {
		if !dcs.IsDegradable(err) {
			r.errs = append(r.errs, fmt.Errorf("antientropy %s: %w", p.Label, err))
			return moved
		}
		r.aborted++
		if !st.diverged {
			st.diverged, st.divergedAt = true, st.lastSync
		}
		return moved
	}
	r.sessions++
	if moved > 0 && !st.diverged {
		st.diverged, st.divergedAt = true, st.lastSync
	}
	now := r.sched.Now()
	if st.diverged {
		r.conv.Add((now - st.divergedAt).Milliseconds())
		st.diverged = false
	}
	st.lastSync = now
	return moved
}

// unicast sends one session frame, charging the cost model on success.
func (r *Reconciler) unicast(from, to int, payload int) error {
	_, err := dcs.UnicastOpts(r.net, r.router, from, to, network.KindControl, payload, dcs.TxOptions{PathBuf: &r.pathBuf})
	if err == nil {
		r.bytes += uint64(payload)
	}
	return err
}

// ratelessSession streams coded symbols primary→replica in doubling
// batches until the replica peel-decodes the symmetric difference, then
// transfers exactly the missing events in both directions. Cost is
// ~O(|Δ|) symbols however large the stores are; an undecodable stream
// (past MaxSymbols) falls back to the snapshot exchange.
func (r *Reconciler) ratelessSession(p Pair) (int, error) {
	r.bufA = p.Primary.AppendDigests(r.bufA[:0])
	r.bufB = p.Replica.AppendDigests(r.bufB[:0])
	enc := NewEncoder(r.bufA)
	dec := NewDecoder(r.bufB)
	batch := r.cfg.firstBatch()
	var diff Diff
	for {
		n := batch
		if rem := r.cfg.maxSymbols() - dec.Received(); n > rem {
			n = rem
		}
		for i := 0; i < n; i++ {
			dec.Add(enc.Next())
		}
		if err := r.unicast(p.Primary.Node(), p.Replica.Node(), frameBytes(n)); err != nil {
			return 0, err
		}
		r.symbols += uint64(n)
		if d, ok := dec.Decode(); ok {
			diff = d
			break
		}
		if dec.Received() >= r.cfg.maxSymbols() {
			r.fallbacks++
			return r.snapshotSession(p)
		}
		if batch < r.cfg.maxBatch() {
			batch *= 2
			if batch > r.cfg.maxBatch() {
				batch = r.cfg.maxBatch()
			}
		}
	}
	return r.transfer(p, diff)
}

// transfer moves a decoded symmetric difference: the replica requests
// its missing events by digest and the primary ships them, then the
// replica pushes its primary-missing events back.
func (r *Reconciler) transfer(p Pair, diff Diff) (int, error) {
	moved := 0
	if len(diff.Remote) > 0 {
		if err := r.unicast(p.Replica.Node(), p.Primary.Node(), digestBytes(len(diff.Remote))); err != nil {
			return moved, err
		}
		n, err := r.ship(p.Primary, p.Replica, diff.Remote)
		moved += n
		if err != nil {
			return moved, err
		}
	}
	if len(diff.Local) > 0 {
		n, err := r.ship(p.Replica, p.Primary, diff.Local)
		moved += n
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// ship fetches the events behind digests from one side, pays for their
// transfer, and inserts them on the other.
func (r *Reconciler) ship(from, to Store, digests []uint64) (int, error) {
	evs := r.eventBuf[:0]
	for _, d := range digests {
		if e, ok := from.Fetch(d); ok {
			evs = append(evs, e)
		}
	}
	r.eventBuf = evs
	if len(evs) == 0 {
		return 0, nil
	}
	k := len(evs[0].Values)
	if err := r.unicast(from.Node(), to.Node(), dcs.ReplyBytes(k, len(evs))); err != nil {
		return 0, err
	}
	for _, e := range evs {
		to.Insert(e)
	}
	return len(evs), nil
}

// snapshotSession is the naive baseline: the primary ships its entire
// store to the replica, which applies what it lacks and pushes its own
// surplus back. Cost grows with store size regardless of how little
// actually differs.
func (r *Reconciler) snapshotSession(p Pair) (int, error) {
	r.bufA = p.Primary.AppendDigests(r.bufA[:0])
	r.bufB = p.Replica.AppendDigests(r.bufB[:0])
	aSet := make(map[uint64]bool, len(r.bufA))
	aUniq := r.bufA[:0]
	for _, d := range r.bufA {
		if !aSet[d] {
			aSet[d] = true
			aUniq = append(aUniq, d)
		}
	}
	bSet := make(map[uint64]bool, len(r.bufB))
	for _, d := range r.bufB {
		bSet[d] = true
	}

	// The full primary store travels even when nothing differs. The
	// deduped slice, not the set, drives enumeration so apply order stays
	// deterministic.
	evs := r.eventBuf[:0]
	for _, d := range aUniq {
		if e, ok := p.Primary.Fetch(d); ok {
			evs = append(evs, e)
		}
	}
	r.eventBuf = evs
	k := 0
	if len(evs) > 0 {
		k = len(evs[0].Values)
	}
	if err := r.unicast(p.Primary.Node(), p.Replica.Node(), dcs.ReplyBytes(k, len(evs))); err != nil {
		return 0, err
	}
	moved := 0
	for _, e := range evs {
		if !bSet[Digest(e)] {
			p.Replica.Insert(e)
			moved++
		}
	}

	// Replica-only surplus goes back.
	var back []uint64
	for _, d := range r.bufB {
		if !aSet[d] {
			aSet[d] = true // dedup duplicates in bufB
			back = append(back, d)
		}
	}
	if len(back) > 0 {
		n, err := r.ship(p.Replica, p.Primary, back)
		moved += n
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// PairInSync reports whether both sides of a pair hold identical event
// sets (by digest).
func PairInSync(p Pair) bool {
	return pairDivergence(p) == 0
}

func pairDivergence(p Pair) int {
	a := map[uint64]bool{}
	for _, d := range p.Primary.AppendDigests(nil) {
		a[d] = true
	}
	b := map[uint64]bool{}
	for _, d := range p.Replica.AppendDigests(nil) {
		b[d] = true
	}
	diff := 0
	for d := range a {
		if !b[d] {
			diff++
		}
	}
	for d := range b {
		if !a[d] {
			diff++
		}
	}
	return diff
}

// Divergence sums the symmetric-difference sizes across every pair of
// every source — 0 means all replicas are in sync.
func Divergence(srcs ...PairSource) int {
	total := 0
	for _, src := range srcs {
		for _, p := range src.ReplicaPairs() {
			total += pairDivergence(p)
		}
	}
	return total
}

// Converged reports whether every replica pair is in sync.
func Converged(srcs ...PairSource) bool { return Divergence(srcs...) == 0 }
