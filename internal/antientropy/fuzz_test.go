package antientropy

import (
	"encoding/binary"
	"testing"
)

// FuzzReconcileDecode derives two overlapping digest sets from the fuzz
// input and round-trips their symmetric difference through the rateless
// codec: encode A, subtract B, peel-decode. Whenever the decoder reports
// success the decoded diff must be exactly the true symmetric
// difference — a wrong-but-confident decode is the one failure mode the
// checksums exist to prevent.
func FuzzReconcileDecode(f *testing.F) {
	f.Add(uint64(1), uint16(10), uint16(2), uint16(3))
	f.Add(uint64(42), uint16(0), uint16(0), uint16(0))
	f.Add(uint64(7), uint16(200), uint16(40), uint16(0))
	f.Add(uint64(99), uint16(1), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, common, onlyA, onlyB uint16) {
		const cap = 300
		nCommon, nA, nB := int(common)%cap, int(onlyA)%cap, int(onlyB)%cap

		// Deterministic distinct keys from the seed via the codec's own
		// splitmix pass over a counter.
		next := func(i int) uint64 {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], seed+uint64(i))
			k := splitmix64(binary.LittleEndian.Uint64(buf[:]))
			if k == 0 {
				k = 1
			}
			return k
		}
		seen := map[uint64]bool{}
		var a, b []uint64
		wantA := map[uint64]bool{}
		wantB := map[uint64]bool{}
		i := 0
		draw := func() uint64 {
			for {
				k := next(i)
				i++
				if !seen[k] {
					seen[k] = true
					return k
				}
			}
		}
		for j := 0; j < nCommon; j++ {
			k := draw()
			a = append(a, k)
			b = append(b, k)
		}
		for j := 0; j < nA; j++ {
			k := draw()
			a = append(a, k)
			wantA[k] = true
		}
		for j := 0; j < nB; j++ {
			k := draw()
			b = append(b, k)
			wantB[k] = true
		}

		enc := NewEncoder(a)
		dec := NewDecoder(b)
		budget := 16 * (nA + nB + 2)
		for s := 0; s < budget; s++ {
			dec.Add(enc.Next())
			d, ok := dec.Decode()
			if !ok {
				continue
			}
			if len(d.Remote) != len(wantA) || len(d.Local) != len(wantB) {
				t.Fatalf("decoded %d/%d keys, want %d/%d", len(d.Remote), len(d.Local), len(wantA), len(wantB))
			}
			for _, k := range d.Remote {
				if !wantA[k] {
					t.Fatalf("decoded bogus A-only key %d", k)
				}
			}
			for _, k := range d.Local {
				if !wantB[k] {
					t.Fatalf("decoded bogus B-only key %d", k)
				}
			}
			return
		}
		// Not decoding within the budget is unlikely but legal for a
		// rateless code; only a wrong decode is a failure.
	})
}
