package antientropy

import (
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/rng"
)

// reconcile runs the codec end to end: stream symbols from an encoder
// over setA into a decoder over setB until it decodes, returning the
// diff and the number of symbols it took.
func reconcile(t *testing.T, setA, setB []uint64, maxSymbols int) (Diff, int) {
	t.Helper()
	enc := NewEncoder(setA)
	dec := NewDecoder(setB)
	for i := 0; i < maxSymbols; i++ {
		dec.Add(enc.Next())
		if d, ok := dec.Decode(); ok {
			return d, dec.Received()
		}
	}
	t.Fatalf("no decode after %d symbols (|A|=%d |B|=%d)", maxSymbols, len(setA), len(setB))
	return Diff{}, 0
}

// keySets builds two sets sharing `common` keys with `onlyA`/`onlyB`
// extras, returning the sets and the expected one-sided differences.
func keySets(src *rng.Source, common, onlyA, onlyB int) (a, b, wantA, wantB []uint64) {
	seen := map[uint64]bool{}
	draw := func() uint64 {
		for {
			k := uint64(src.Intn(1 << 62))
			if k != 0 && !seen[k] {
				seen[k] = true
				return k
			}
		}
	}
	for i := 0; i < common; i++ {
		k := draw()
		a = append(a, k)
		b = append(b, k)
	}
	for i := 0; i < onlyA; i++ {
		k := draw()
		a = append(a, k)
		wantA = append(wantA, k)
	}
	for i := 0; i < onlyB; i++ {
		k := draw()
		b = append(b, k)
		wantB = append(wantB, k)
	}
	return a, b, wantA, wantB
}

func sameSet(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	m := map[uint64]bool{}
	for _, k := range want {
		m[k] = true
	}
	for _, k := range got {
		if !m[k] {
			return false
		}
	}
	return true
}

func TestEqualSetsDecodeFromOneSymbol(t *testing.T) {
	src := rng.New(1)
	a, _, _, _ := keySets(src, 500, 0, 0)
	d, n := reconcile(t, a, a, 4)
	if n != 1 {
		t.Fatalf("equal sets took %d symbols, want 1", n)
	}
	if d.Size() != 0 {
		t.Fatalf("equal sets decoded a diff: %+v", d)
	}
}

func TestDecodeRecoversSymmetricDifference(t *testing.T) {
	cases := []struct{ common, onlyA, onlyB int }{
		{0, 1, 0}, {0, 0, 1}, {0, 3, 2},
		{100, 5, 0}, {100, 0, 5}, {100, 4, 3},
		{1000, 12, 9}, {5, 40, 30},
	}
	for i, c := range cases {
		src := rng.New(int64(100 + i))
		a, b, wantA, wantB := keySets(src, c.common, c.onlyA, c.onlyB)
		d, _ := reconcile(t, a, b, 4096)
		if !sameSet(d.Remote, wantA) {
			t.Errorf("case %d: Remote = %d keys, want the %d A-only keys", i, len(d.Remote), len(wantA))
		}
		if !sameSet(d.Local, wantB) {
			t.Errorf("case %d: Local = %d keys, want the %d B-only keys", i, len(d.Local), len(wantB))
		}
	}
}

// The rateless claim itself: symbol cost tracks the difference size, not
// the store size. A 10× larger store with the same difference must not
// cost appreciably more symbols, while a 10× larger difference must cost
// more.
func TestSymbolCostScalesWithDifferenceNotStoreSize(t *testing.T) {
	src := rng.New(7)

	a1, b1, _, _ := keySets(src, 100, 4, 4)
	_, smallStore := reconcile(t, a1, b1, 4096)

	a2, b2, _, _ := keySets(src, 1000, 4, 4)
	_, bigStore := reconcile(t, a2, b2, 4096)

	a3, b3, _, _ := keySets(src, 100, 40, 40)
	_, bigDiff := reconcile(t, a3, b3, 8192)

	if bigStore > 4*smallStore+8 {
		t.Errorf("10× store grew symbols %d → %d; cost should track the difference", smallStore, bigStore)
	}
	if bigDiff <= bigStore {
		t.Errorf("10× difference took %d symbols vs %d for the small one; cost must grow with |Δ|", bigDiff, bigStore)
	}
}

func TestDuplicateDigestsCollapse(t *testing.T) {
	a := []uint64{7, 7, 7, 42}
	b := []uint64{42, 42}
	d, _ := reconcile(t, a, b, 64)
	if !sameSet(d.Remote, []uint64{7}) || len(d.Local) != 0 {
		t.Fatalf("duplicates mishandled: %+v", d)
	}
}

func TestDecodeFailsOnPrefixThenSucceeds(t *testing.T) {
	src := rng.New(3)
	a, b, _, _ := keySets(src, 50, 10, 10)
	enc := NewEncoder(a)
	dec := NewDecoder(b)
	// One symbol cannot decode a 20-element difference.
	dec.Add(enc.Next())
	if _, ok := dec.Decode(); ok {
		t.Fatal("decoded a 20-element difference from one symbol")
	}
	for i := 0; i < 4095; i++ {
		dec.Add(enc.Next())
		if d, ok := dec.Decode(); ok {
			if d.Size() != 20 {
				t.Fatalf("decoded diff size %d, want 20", d.Size())
			}
			return
		}
	}
	t.Fatal("never decoded")
}

func TestMappingStrictlyIncreasing(t *testing.T) {
	for key := uint64(1); key < 200; key++ {
		m := newMapping(key)
		prev := uint64(0)
		for i := 0; i < 50; i++ {
			next := m.next()
			if next <= prev {
				t.Fatalf("key %d: index %d after %d not increasing", key, next, prev)
			}
			prev = next
		}
	}
}

func TestIndicesBelowMatchesMapping(t *testing.T) {
	key := uint64(0xDEADBEEF)
	m := newMapping(key)
	want := []uint64{0}
	for {
		i := m.next()
		if i >= 300 {
			break
		}
		want = append(want, i)
	}
	got := indicesBelow(key, 300)
	if len(got) != len(want) {
		t.Fatalf("indicesBelow len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("indicesBelow[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got := indicesBelow(key, 0); got != nil {
		t.Fatalf("indicesBelow(0) = %v, want nil", got)
	}
}

func TestDigestDependsOnSeqAndValues(t *testing.T) {
	e1 := event.Event{Seq: 1, Values: []float64{0.1, 0.2, 0.3}}
	e2 := event.Event{Seq: 2, Values: []float64{0.1, 0.2, 0.3}}
	e3 := event.Event{Seq: 1, Values: []float64{0.1, 0.2, 0.4}}
	if Digest(e1) == Digest(e2) {
		t.Error("digest ignores Seq")
	}
	if Digest(e1) == Digest(e3) {
		t.Error("digest ignores Values")
	}
	if Digest(e1) != Digest(event.Event{Seq: 1, Values: []float64{0.1, 0.2, 0.3}}) {
		t.Error("digest not deterministic")
	}
}
