package wire

import (
	"reflect"
	"testing"

	"pooldcs/internal/event"
)

// FuzzDecodeEvent checks that arbitrary bytes never panic the decoder and
// that anything decodable re-encodes to a decodable value.
func FuzzDecodeEvent(f *testing.F) {
	seed, _ := AppendEvent(nil, event.Event{Seq: 7, Values: []float64{0.1, 0.9}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeEvent(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
		re, err := AppendEvent(nil, e)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		e2, _, err := DecodeEvent(re)
		if err != nil {
			t.Fatalf("re-encoded event does not decode: %v", err)
		}
		if e2.Seq != e.Seq || len(e2.Values) != len(e.Values) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodeQuery mirrors FuzzDecodeEvent for queries.
func FuzzDecodeQuery(f *testing.F) {
	seed, _ := AppendQuery(nil, event.NewQuery(event.Span(0.1, 0.5), event.Unspecified()))
	f.Add(seed)
	f.Add([]byte{3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, _, err := DecodeQuery(data)
		if err != nil {
			return
		}
		re, err := AppendQuery(nil, q)
		if err != nil {
			t.Fatalf("decoded query does not re-encode: %v", err)
		}
		q2, _, err := DecodeQuery(re)
		if err != nil {
			t.Fatalf("re-encoded query does not decode: %v", err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatal("query round trip mismatch")
		}
	})
}

// FuzzDecodeEvents checks the batch decoder against arbitrary inputs.
func FuzzDecodeEvents(f *testing.F) {
	batch, _ := AppendEvents(nil, []event.Event{
		{Seq: 1, Values: []float64{0.2}},
		{Seq: 2, Values: []float64{0.3, 0.4}},
	})
	f.Add(batch)
	f.Add([]byte{255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, _, err := DecodeEvents(data)
		if err != nil {
			return
		}
		if _, err := AppendEvents(nil, events); err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
	})
}
