package wire

import (
	"errors"
	"reflect"
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/rng"
)

func TestEventRoundTrip(t *testing.T) {
	e := event.Event{Seq: 42, Values: []float64{0.4, 0.3, 0.1}}
	buf, err := AppendEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != EventSize(3) {
		t.Errorf("encoded size %d, want %d", len(buf), EventSize(3))
	}
	got, rest, err := DecodeEvent(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip: %+v != %+v", got, e)
	}
}

func TestEventRoundTripProperty(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 300; trial++ {
		k := 1 + src.Intn(MaxDims)
		e := event.Event{Seq: uint64(src.Int63())}
		for i := 0; i < k; i++ {
			e.Values = append(e.Values, src.Float64())
		}
		buf, err := AppendEvent(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := DecodeEvent(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v (%d rest)", err, len(rest))
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("round trip: %+v != %+v", got, e)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	queries := []event.Query{
		event.NewQuery(event.Span(0.2, 0.3), event.Span(0.25, 0.35), event.Span(0.21, 0.24)),
		event.NewQuery(event.Unspecified(), event.Unspecified(), event.Span(0.8, 0.84)),
		event.NewQuery(event.PointRange(0.5)),
		event.NewQuery(event.Span(0, 1), event.Unspecified()),
	}
	for _, q := range queries {
		buf, err := AppendQuery(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != QuerySize(q.Dims()) {
			t.Errorf("encoded size %d, want %d", len(buf), QuerySize(q.Dims()))
		}
		got, rest, err := DecodeQuery(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode %v: %v", q, err)
		}
		if !reflect.DeepEqual(got, q) {
			t.Errorf("round trip: %+v != %+v", got, q)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	src := rng.New(2)
	var events []event.Event
	for i := 0; i < 57; i++ {
		events = append(events, event.Event{
			Seq:    uint64(i + 1),
			Values: []float64{src.Float64(), src.Float64(), src.Float64()},
		})
	}
	buf, err := AppendEvents(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := DecodeEvents(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Error("batch round trip mismatch")
	}

	// Empty batch.
	buf, err = AppendEvents(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = DecodeEvents(buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %v", got, err)
	}
}

func TestConcatenatedDecode(t *testing.T) {
	e1 := event.Event{Seq: 1, Values: []float64{0.1}}
	e2 := event.Event{Seq: 2, Values: []float64{0.2, 0.3}}
	buf, err := AppendEvent(nil, e1)
	if err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendEvent(buf, e2); err != nil {
		t.Fatal(err)
	}
	got1, rest, err := DecodeEvent(buf)
	if err != nil || got1.Seq != 1 {
		t.Fatalf("first decode: %v %v", got1, err)
	}
	got2, rest, err := DecodeEvent(rest)
	if err != nil || got2.Seq != 2 || len(rest) != 0 {
		t.Fatalf("second decode: %v %v", got2, err)
	}
}

func TestTruncatedBuffers(t *testing.T) {
	e := event.Event{Seq: 7, Values: []float64{0.1, 0.2}}
	buf, err := AppendEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeEvent(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}

	q := event.NewQuery(event.Span(0.1, 0.2), event.Unspecified())
	qbuf, err := AppendQuery(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(qbuf); cut++ {
		if _, _, err := DecodeQuery(qbuf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("query cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDimensionalityLimits(t *testing.T) {
	if _, err := AppendEvent(nil, event.Event{}); err == nil {
		t.Error("zero-dim event accepted")
	}
	big := event.Event{Values: make([]float64, MaxDims+1)}
	if _, err := AppendEvent(nil, big); err == nil {
		t.Error("oversized event accepted")
	}
	if _, err := AppendQuery(nil, event.Query{}); err == nil {
		t.Error("zero-dim query accepted")
	}
	if _, err := AppendQuery(nil, event.Query{Ranges: make([]event.Range, MaxDims+1)}); err == nil {
		t.Error("oversized query accepted")
	}
}

func TestCorruptHeaders(t *testing.T) {
	// An event header claiming k=0.
	buf := make([]byte, EventSize(1))
	if _, _, err := DecodeEvent(buf); err == nil {
		t.Error("k=0 event header accepted")
	}
	// A query header claiming an enormous k.
	qbuf := make([]byte, 4)
	qbuf[0] = 0xFF
	qbuf[1] = 0xFF
	if _, _, err := DecodeQuery(qbuf); err == nil {
		t.Error("oversized query header accepted")
	}
}
