// Package wire defines the byte-level encoding of events and queries —
// the payloads the cost model charges for. The simulator moves Go values
// for speed, but the encodings here are the ground truth for payload
// sizes and make the data model usable as a real protocol.
//
// All encodings are little-endian and fixed-layout:
//
//	Event: seq u64 | k u16 | k × f64
//	Query: k u16 | flags u16 (bit i set = attribute i wild) | k × (f64, f64)
//
// Wild query attributes are encoded as [0, 1] so decoding needs no
// special cases; the flag bit restores the wildcard.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pooldcs/internal/event"
)

// MaxDims bounds the encodable dimensionality (the query wildcard flags
// are a 16-bit set).
const MaxDims = 16

// EventSize returns the encoded size of a k-dimensional event.
func EventSize(k int) int { return 8 + 2 + 8*k }

// QuerySize returns the encoded size of a k-dimensional query.
func QuerySize(k int) int { return 2 + 2 + 16*k }

// ErrTruncated reports a buffer shorter than its header promises.
var ErrTruncated = errors.New("wire: truncated buffer")

// AppendEvent appends the encoding of e to dst and returns the extended
// slice.
func AppendEvent(dst []byte, e event.Event) ([]byte, error) {
	k := len(e.Values)
	if k == 0 || k > MaxDims {
		return dst, fmt.Errorf("wire: event dimensionality %d outside 1..%d", k, MaxDims)
	}
	dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(k))
	for _, v := range e.Values {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst, nil
}

// DecodeEvent decodes one event from the front of buf, returning the
// event and the remaining bytes.
func DecodeEvent(buf []byte) (event.Event, []byte, error) {
	if len(buf) < 10 {
		return event.Event{}, buf, ErrTruncated
	}
	seq := binary.LittleEndian.Uint64(buf)
	k := int(binary.LittleEndian.Uint16(buf[8:]))
	if k == 0 || k > MaxDims {
		return event.Event{}, buf, fmt.Errorf("wire: event dimensionality %d outside 1..%d", k, MaxDims)
	}
	need := EventSize(k)
	if len(buf) < need {
		return event.Event{}, buf, ErrTruncated
	}
	values := make([]float64, k)
	for i := range values {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[10+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return event.Event{}, buf, fmt.Errorf("wire: event value %d is not finite", i+1)
		}
		values[i] = v
	}
	return event.Event{Seq: seq, Values: values}, buf[need:], nil
}

// AppendQuery appends the encoding of q to dst and returns the extended
// slice.
func AppendQuery(dst []byte, q event.Query) ([]byte, error) {
	k := len(q.Ranges)
	if k == 0 || k > MaxDims {
		return dst, fmt.Errorf("wire: query dimensionality %d outside 1..%d", k, MaxDims)
	}
	var flags uint16
	for i, r := range q.Ranges {
		if r.Wild {
			flags |= 1 << uint(i)
		}
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(k))
	dst = binary.LittleEndian.AppendUint16(dst, flags)
	for _, r := range q.Ranges {
		lo, hi := r.L, r.U
		if r.Wild {
			lo, hi = 0, 1
		}
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(lo))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(hi))
	}
	return dst, nil
}

// DecodeQuery decodes one query from the front of buf, returning the
// query and the remaining bytes.
func DecodeQuery(buf []byte) (event.Query, []byte, error) {
	if len(buf) < 4 {
		return event.Query{}, buf, ErrTruncated
	}
	k := int(binary.LittleEndian.Uint16(buf))
	flags := binary.LittleEndian.Uint16(buf[2:])
	if k == 0 || k > MaxDims {
		return event.Query{}, buf, fmt.Errorf("wire: query dimensionality %d outside 1..%d", k, MaxDims)
	}
	need := QuerySize(k)
	if len(buf) < need {
		return event.Query{}, buf, ErrTruncated
	}
	ranges := make([]event.Range, k)
	for i := range ranges {
		off := 4 + 16*i
		lo := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return event.Query{}, buf, fmt.Errorf("wire: query range %d is not finite", i+1)
		}
		if flags&(1<<uint(i)) != 0 {
			ranges[i] = event.Unspecified()
		} else {
			ranges[i] = event.Range{L: lo, U: hi}
		}
	}
	return event.Query{Ranges: ranges}, buf[need:], nil
}

// AppendEvents encodes a batch: count u16 followed by the events. Batches
// are what reply messages carry.
func AppendEvents(dst []byte, events []event.Event) ([]byte, error) {
	if len(events) > math.MaxUint16 {
		return dst, fmt.Errorf("wire: batch of %d events exceeds u16 count", len(events))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(events)))
	for _, e := range events {
		var err error
		if dst, err = AppendEvent(dst, e); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeEvents decodes a batch encoded by AppendEvents.
func DecodeEvents(buf []byte) ([]event.Event, []byte, error) {
	if len(buf) < 2 {
		return nil, buf, ErrTruncated
	}
	count := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	events := make([]event.Event, 0, count)
	for i := 0; i < count; i++ {
		var (
			e   event.Event
			err error
		)
		if e, buf, err = DecodeEvent(buf); err != nil {
			return nil, buf, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
		events = append(events, e)
	}
	return events, buf, nil
}
