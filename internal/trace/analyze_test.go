package trace

import (
	"strings"
	"testing"
	"time"
)

// sampleTrace builds a small trace by hand: one insert span, one query
// span with a nested fan-out, and one background hop.
func sampleTrace() []Event {
	clock := &fakeClock{}
	tr := New(clock)

	tr.Begin(OpInsert, 0, "")
	tr.Record(TypePlace, 3, 1, "P1 C(0,1)")
	tr.Hop(0, 1, "insert", 40, 1, false)
	tr.Hop(1, 3, "insert", 40, 2, true) // 2 frames lost
	tr.End()

	clock.t = 4 * time.Millisecond
	tr.Begin(OpQuery, 5, "")
	tr.Hop(5, 3, "query", 16, 1, false)
	tr.Begin(OpFanout, 3, "P0")
	tr.Record(TypeResolve, 3, 7, "C(2,2)")
	tr.Broadcast(3, "query", 16, 1, 4, 0)
	tr.End()
	clock.t = 9 * time.Millisecond
	tr.Hop(3, 5, "reply", 120, 3, false)
	tr.End()

	tr.Hop(2, 6, "control", 8, 1, false) // background

	return tr.Events()
}

func TestAnalyzeAggregates(t *testing.T) {
	a, err := Analyze(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != 2 || len(a.ByID) != 3 {
		t.Fatalf("roots=%d spans=%d, want 2 roots, 3 spans", len(a.Roots), len(a.ByID))
	}
	wantKinds := map[string]KindTotals{
		"insert":  {Frames: 3, Bytes: 80, Lost: 2},
		"query":   {Frames: 2, Bytes: 32},
		"reply":   {Frames: 3, Bytes: 120},
		"control": {Frames: 1, Bytes: 8},
	}
	for k, want := range wantKinds {
		if got := a.ByKind[k]; got != want {
			t.Errorf("ByKind[%q] = %+v, want %+v", k, got, want)
		}
	}
	if got := a.TotalFrames(); got != 9 {
		t.Errorf("TotalFrames = %d, want 9", got)
	}
	if a.BackgroundFrames != 1 {
		t.Errorf("BackgroundFrames = %d, want 1", a.BackgroundFrames)
	}
	if a.Horizon != 9*time.Millisecond {
		t.Errorf("Horizon = %v", a.Horizon)
	}

	queries := a.RootsByOp(OpQuery)
	if len(queries) != 1 {
		t.Fatalf("query roots = %d", len(queries))
	}
	q := queries[0]
	// 1 query hop + 1 fan-out broadcast + 3 reply frames.
	if q.Hops() != 5 || q.HopsOwn != 4 {
		t.Errorf("query hops = %d (own %d), want 5 (own 4)", q.Hops(), q.HopsOwn)
	}
	if q.Duration() != 5*time.Millisecond {
		t.Errorf("query duration = %v, want 5ms", q.Duration())
	}
	ins := a.RootsByOp(OpInsert)[0]
	if ins.Hops() != 3 || ins.Lost() != 2 {
		t.Errorf("insert hops=%d lost=%d, want 3, 2", ins.Hops(), ins.Lost())
	}
}

func TestAnalyzeHistograms(t *testing.T) {
	a, err := Analyze(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	h := a.HopHistogram(OpQuery)
	if h.Total() != 1 || h.Quantile(50) != 5 {
		t.Errorf("query hop histogram: n=%d p50=%d, want 1, 5", h.Total(), h.Quantile(50))
	}
	d := a.DurationHistogram(OpQuery)
	if d.Quantile(50) != 5 {
		t.Errorf("query duration p50 = %dms, want 5", d.Quantile(50))
	}
	if a.HopHistogram(OpFail).Total() != 0 {
		t.Error("fail histogram not empty")
	}
}

func TestAnalyzeNodeRanking(t *testing.T) {
	a, err := Analyze(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	r := a.NodeRanking()
	if len(r) == 0 || r[0].Node != 3 {
		t.Fatalf("ranking head = %+v, want node 3", r[:1])
	}
	// Node 3: tx 1 broadcast frame + 3 reply frames; rx 1 query frame
	// (the 2-frame lost insert hop adds nothing to rx).
	if r[0].Tx != 4 || r[0].Rx != 1 {
		t.Errorf("node 3 load = tx %d rx %d, want 4, 1", r[0].Tx, r[0].Rx)
	}
	for i := 1; i < len(r); i++ {
		if r[i].Total() > r[i-1].Total() {
			t.Errorf("ranking not descending at %d", i)
		}
		if r[i].Total() == r[i-1].Total() && r[i].Node < r[i-1].Node {
			t.Errorf("tie at %d not ordered by node id", i)
		}
	}
}

func TestAnalyzeToleratesMalformedSpans(t *testing.T) {
	// An orphaned hop (its span_start was evicted or cut off) demotes to
	// background traffic and flags the analysis truncated.
	a, err := Analyze([]Event{
		{Type: TypeHop, Span: 99, From: 0, To: 1, Kind: "query", Frames: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Truncated {
		t.Error("orphaned hop did not mark the analysis truncated")
	}
	if a.BackgroundFrames != 1 {
		t.Errorf("orphaned hop frames = %d, want 1 background frame", a.BackgroundFrames)
	}

	// A re-used span id keeps the first definition.
	a, err = Analyze([]Event{
		{Type: TypeSpanStart, Span: 1, Op: OpQuery, Node: 0},
		{Type: TypeSpanStart, Span: 1, Op: OpInsert, Node: 7},
		{Type: TypeSpanEnd, Span: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Truncated {
		t.Error("duplicate span start did not mark the analysis truncated")
	}
	if len(a.Roots) != 1 || a.Roots[0].Op != OpQuery {
		t.Errorf("roots = %+v, want the first span definition kept", a.Roots)
	}
}

func TestAnalyzeUnclosedSpanEndsAtHorizon(t *testing.T) {
	a, err := Analyze([]Event{
		{T: 1 * time.Millisecond, Type: TypeSpanStart, Span: 1, Op: OpQuery, Node: 0},
		{T: 9 * time.Millisecond, Type: TypeHop, Span: 1, From: 0, To: 1, Kind: "query", Frames: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Truncated {
		t.Error("unclosed span did not mark the analysis truncated")
	}
	if got := a.ByID[1].Duration(); got != 8*time.Millisecond {
		t.Errorf("unclosed span duration = %v, want extension to the 9ms horizon", got)
	}
}

func TestExtractSpan(t *testing.T) {
	events := sampleTrace()
	sub := ExtractSpan(events, 2)
	if len(sub) == 0 {
		t.Fatal("empty extraction")
	}
	ids := map[uint64]bool{}
	for _, ev := range sub {
		ids[ev.Span] = true
	}
	if !ids[2] || !ids[3] {
		t.Errorf("extraction missing query subtree spans: %v", ids)
	}
	if ids[1] {
		t.Error("extraction leaked the unrelated insert span")
	}
	a, err := Analyze(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != 1 || a.Roots[0].ID != 2 {
		t.Errorf("extracted trace roots = %+v, want span 2 only", a.Roots)
	}
	if ExtractSpan(events, 0) != nil {
		t.Error("ExtractSpan(0) returned events")
	}
}

func TestWriteTree(t *testing.T) {
	a, err := Analyze(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := a.RootsByOp(OpQuery)[0].WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"query#2 node=5 hops=5 t=5ms",
		"  fanout#3 P0 node=3 hops=1",
		"    resolve C(2,2) node=3 matches=7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tree missing %q in:\n%s", want, got)
		}
	}
}
