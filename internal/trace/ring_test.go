package trace

import (
	"testing"
	"time"
)

func TestRingEvictsOldest(t *testing.T) {
	clock := &fakeClock{}
	tr := NewRing(clock, 4)
	if tr.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", tr.Capacity())
	}
	for i := 0; i < 7; i++ {
		clock.t = time.Duration(i) * time.Millisecond
		tr.Hop(i, i+1, "query", 8, 1, false)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := time.Duration(i+3) * time.Millisecond
		if ev.T != want {
			t.Errorf("event %d at %v, want %v (oldest-first order)", i, ev.T, want)
		}
	}
}

func TestRingUnderCapacityBehavesLikeUnbounded(t *testing.T) {
	tr := NewRing(nil, 16)
	tr.Begin(OpQuery, 0, "")
	tr.Hop(0, 1, "query", 8, 1, false)
	tr.End()
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d before wrap", tr.Dropped())
	}
	a, err := Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncated || len(a.Roots) != 1 {
		t.Errorf("unwrapped ring analysis: truncated=%v roots=%d", a.Truncated, len(a.Roots))
	}
}

// TestRingEvictedTraceAnalyzes is the flight-recorder contract: after
// eviction claims span starts, Analyze still returns a usable partial
// Analysis instead of erroring.
func TestRingEvictedTraceAnalyzes(t *testing.T) {
	clock := &fakeClock{}
	// Capacity deliberately not a multiple of the 4 events a query
	// emits, so the surviving window starts mid-span.
	tr := NewRing(clock, 6)
	for q := 0; q < 10; q++ {
		clock.t = time.Duration(q) * time.Millisecond
		tr.Begin(OpQuery, q, "")
		tr.Hop(q, q+1, "query", 8, 1, false)
		tr.Hop(q+1, q, "reply", 16, 1, false)
		tr.End()
	}
	if tr.Dropped() == 0 {
		t.Fatal("ring never wrapped")
	}
	a, err := Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Truncated {
		t.Error("evicted trace not flagged truncated")
	}
	if len(a.Roots) == 0 {
		t.Error("no surviving spans reconstructed")
	}
}

func TestRingReset(t *testing.T) {
	tr := NewRing(nil, 2)
	tr.Hop(0, 1, "query", 8, 1, false)
	tr.Hop(1, 2, "query", 8, 1, false)
	tr.Hop(2, 3, "query", 8, 1, false)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after reset: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Hop(4, 5, "query", 8, 1, false)
	if evs := tr.Events(); len(evs) != 1 || evs[0].From != 4 {
		t.Errorf("post-reset events = %+v", evs)
	}
	if NewRing(nil, -3).Capacity() != 1 {
		t.Error("non-positive capacity not clamped to 1")
	}
}

func TestExplicitSpanAPI(t *testing.T) {
	var nilTr *Tracer
	if nilTr.BeginAt(0, OpQuery, 1, "") != 0 || nilTr.CurrentSpan() != 0 {
		t.Error("nil tracer explicit-span methods not inert")
	}
	nilTr.PushSpan(3)
	nilTr.PopSpan()
	nilTr.EndSpan(3)
	nilTr.RecordAt(time.Second, TypeWait, 1, 0, "")
	if nilTr.Dropped() != 0 || nilTr.Capacity() != 0 {
		t.Error("nil tracer ring accessors not inert")
	}

	clock := &fakeClock{}
	tr := New(clock)
	root := tr.BeginAt(0, OpQuery, 5, "q")
	if root == 0 {
		t.Fatal("BeginAt returned 0")
	}
	if tr.CurrentSpan() != 0 {
		t.Error("BeginAt touched the ambient span stack")
	}
	// A later callback re-enters the span explicitly.
	clock.t = 2 * time.Millisecond
	tr.PushSpan(root)
	if tr.CurrentSpan() != root {
		t.Error("PushSpan did not set the ambient span")
	}
	tr.Hop(5, 6, "query", 8, 1, false)
	child := tr.BeginAt(root, OpRetry, 6, "mirror")
	tr.PopSpan()
	if tr.CurrentSpan() != 0 {
		t.Error("PopSpan did not restore the ambient span")
	}
	tr.EndSpan(child)
	clock.t = 7 * time.Millisecond
	tr.EndSpan(root)
	tr.EndSpan(0) // no-op

	a, err := Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	q := a.ByID[root]
	if q == nil || q.Duration() != 7*time.Millisecond {
		t.Fatalf("root span = %+v", q)
	}
	if q.HopsOwn != 1 {
		t.Errorf("hop not attributed to the pushed span: own=%d", q.HopsOwn)
	}
	r := a.ByID[child]
	if r == nil || r.Parent != root || r.Op != OpRetry {
		t.Errorf("retry child = %+v", r)
	}
	if a.Truncated {
		t.Error("balanced explicit-span trace flagged truncated")
	}
}

func TestRecordAtStampsExplicitTime(t *testing.T) {
	clock := &fakeClock{t: 5 * time.Millisecond}
	tr := New(clock)
	id := tr.Begin(OpQuery, 1, "")
	tr.Record(TypeWait, 2, 3, "")
	tr.RecordAt(9*time.Millisecond, TypeServe, 2, 0, "")
	tr.End()
	evs := tr.Events()
	if evs[1].T != 5*time.Millisecond || evs[1].Type != TypeWait {
		t.Errorf("wait event = %+v", evs[1])
	}
	if evs[2].T != 9*time.Millisecond || evs[2].Type != TypeServe || evs[2].Span != id {
		t.Errorf("serve event = %+v", evs[2])
	}
}
