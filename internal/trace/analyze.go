package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pooldcs/internal/stats"
)

// KindTotals aggregates the traffic of one class across a trace.
type KindTotals struct {
	// Frames counts transmissions (one per link-layer frame), matching
	// network.Counters.Messages.
	Frames uint64
	// Bytes counts payload bytes, matching network.Counters.Bytes.
	Bytes uint64
	// Lost counts drops by the lossy-link model: whole frames for
	// unicast hops, individual missed receptions for broadcasts.
	Lost uint64
}

// NodeTotals is one node's hop-level load.
type NodeTotals struct {
	Node   int
	Tx, Rx uint64
}

// Total returns the node's combined load.
func (n NodeTotals) Total() uint64 { return n.Tx + n.Rx }

// Item is one chronological entry of a span: either a semantic record or
// a child span.
type Item struct {
	Record *Event
	Child  *Span
}

// Span is one reconstructed span with its children, records, and traffic.
type Span struct {
	ID     uint64
	Op     Op
	Node   int
	Detail string
	Parent uint64
	Start  time.Duration
	End    time.Duration
	// Items holds records and child spans in event order.
	Items []Item
	// HopsOwn / BytesOwn / LostOwn count traffic recorded directly in
	// this span, excluding children.
	HopsOwn  uint64
	BytesOwn uint64
	LostOwn  uint64

	children []*Span
}

// Duration returns the span's virtual-time extent (zero in traces
// recorded without a scheduler).
func (s *Span) Duration() time.Duration { return s.End - s.Start }

// Hops returns the frames sent in this span and all its descendants.
func (s *Span) Hops() uint64 {
	total := s.HopsOwn
	for _, c := range s.children {
		total += c.Hops()
	}
	return total
}

// Lost returns the lost frames in this span and all its descendants.
func (s *Span) Lost() uint64 {
	total := s.LostOwn
	for _, c := range s.children {
		total += c.Lost()
	}
	return total
}

// Analysis is the digest of a trace.
type Analysis struct {
	// Events is the number of trace records analyzed.
	Events int
	// Roots lists top-level spans in start order.
	Roots []*Span
	// ByID indexes every span.
	ByID map[uint64]*Span
	// ByKind aggregates hop traffic per kind, spanned or not.
	ByKind map[string]KindTotals
	// Nodes aggregates per-node hop load.
	Nodes map[int]*NodeTotals
	// Horizon is the largest timestamp seen.
	Horizon time.Duration
	// BackgroundFrames counts frames recorded outside any span.
	BackgroundFrames uint64
	// Truncated reports that the stream was partial: a span started
	// twice, an event referenced a span whose start was never seen
	// (ring-buffer eviction, mid-drain JSONL truncation), or a span was
	// never closed. The Analysis is still usable — orphaned traffic
	// counts as background, unclosed spans end at the horizon.
	Truncated bool
}

// Analyze reconstructs spans and aggregates from a flat event stream.
// Unbalanced streams — ring-evicted flight-recorder contents, JSONL cut
// off mid-drain, spans still open at the horizon — never fail: the
// partial structure is reconstructed and Truncated is set. The error
// return is always nil and kept only for call-site stability.
func Analyze(events []Event) (*Analysis, error) {
	a := &Analysis{
		Events: len(events),
		ByID:   make(map[uint64]*Span),
		ByKind: make(map[string]KindTotals),
		Nodes:  make(map[int]*NodeTotals),
	}
	// span resolves a span reference; an unknown id marks the stream
	// truncated and demotes the event to background.
	span := func(id uint64) *Span {
		if id == 0 {
			return nil
		}
		s, ok := a.ByID[id]
		if !ok {
			a.Truncated = true
			return nil
		}
		return s
	}
	node := func(id int) *NodeTotals {
		n, ok := a.Nodes[id]
		if !ok {
			n = &NodeTotals{Node: id}
			a.Nodes[id] = n
		}
		return n
	}
	closed := make(map[uint64]bool)
	for i := range events {
		ev := &events[i]
		if ev.T > a.Horizon {
			a.Horizon = ev.T
		}
		switch ev.Type {
		case TypeSpanStart:
			if _, dup := a.ByID[ev.Span]; dup {
				// A re-used id (corrupt or spliced stream): keep the
				// first definition, flag the stream.
				a.Truncated = true
				continue
			}
			s := &Span{
				ID: ev.Span, Op: ev.Op, Node: ev.Node, Detail: ev.Detail,
				Parent: ev.Parent, Start: ev.T, End: ev.T,
			}
			a.ByID[ev.Span] = s
			if ev.Parent == ev.Span {
				// A self-parenting span would cycle the tree; demote it
				// to a root.
				a.Truncated = true
				a.Roots = append(a.Roots, s)
				continue
			}
			if parent := span(ev.Parent); parent == nil {
				a.Roots = append(a.Roots, s)
			} else {
				parent.Items = append(parent.Items, Item{Child: s})
				parent.children = append(parent.children, s)
			}
		case TypeSpanEnd:
			if s := span(ev.Span); s != nil {
				s.End = ev.T
				closed[s.ID] = true
			}
		case TypeHop, TypeBroadcast:
			s := span(ev.Span)
			frames := uint64(ev.Frames)
			lost := uint64(0)
			if ev.Lost {
				lost = frames
			}
			if ev.Type == TypeBroadcast {
				// Per-receiver drops: each missed reception counts once.
				lost += frames * uint64(ev.NLost)
			}
			kt := a.ByKind[ev.Kind]
			kt.Frames += frames
			kt.Bytes += uint64(ev.Bytes)
			kt.Lost += lost
			a.ByKind[ev.Kind] = kt
			node(ev.From).Tx += frames
			if ev.Type == TypeHop && !ev.Lost {
				node(ev.To).Rx += frames
			}
			if s == nil {
				a.BackgroundFrames += frames
			} else {
				s.HopsOwn += frames
				s.BytesOwn += uint64(ev.Bytes)
				s.LostOwn += lost
			}
		default:
			if s := span(ev.Span); s != nil {
				s.Items = append(s.Items, Item{Record: ev})
			}
		}
	}
	// Spans whose end was evicted or never reached extend to the horizon
	// so their duration still bounds the work they cover.
	for id, s := range a.ByID {
		if !closed[id] && a.Horizon > s.End {
			s.End = a.Horizon
			a.Truncated = true
		}
	}
	return a, nil
}

// ExtractSpan returns the events belonging to root's subtree — the span
// boundaries of root and every descendant plus all events recorded under
// them — preserving stream order. It is the exemplar-capture primitive:
// a worst-offender query's full causal trace snapshotted out of a flight
// recorder before eviction claims it.
func ExtractSpan(events []Event, root uint64) []Event {
	if root == 0 {
		return nil
	}
	member := map[uint64]bool{root: true}
	for i := range events {
		ev := &events[i]
		if ev.Type == TypeSpanStart && member[ev.Parent] {
			member[ev.Span] = true
		}
	}
	var out []Event
	for i := range events {
		if member[events[i].Span] {
			out = append(out, events[i])
		}
	}
	return out
}

// RootsByOp returns the top-level spans of one operation, in start order.
func (a *Analysis) RootsByOp(op Op) []*Span {
	var out []*Span
	for _, s := range a.Roots {
		if s.Op == op {
			out = append(out, s)
		}
	}
	return out
}

// HopHistogram collects the total hop count of every top-level span of
// one operation — the per-operation message-cost distribution.
func (a *Analysis) HopHistogram(op Op) *stats.IntHistogram {
	h := stats.NewIntHistogram()
	for _, s := range a.RootsByOp(op) {
		h.Add(int64(s.Hops()))
	}
	return h
}

// DurationHistogram collects the virtual-time duration, in milliseconds,
// of every top-level span of one operation. All zero when the trace was
// recorded without a scheduler.
func (a *Analysis) DurationHistogram(op Op) *stats.IntHistogram {
	h := stats.NewIntHistogram()
	for _, s := range a.RootsByOp(op) {
		h.Add(s.Duration().Milliseconds())
	}
	return h
}

// Kinds returns the traffic classes seen, sorted by name.
func (a *Analysis) Kinds() []string {
	out := make([]string, 0, len(a.ByKind))
	for k := range a.ByKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TotalFrames returns the frame total across all kinds.
func (a *Analysis) TotalFrames() uint64 {
	var t uint64
	for _, kt := range a.ByKind {
		t += kt.Frames
	}
	return t
}

// NodeRanking returns per-node loads sorted by total descending, node id
// ascending on ties.
func (a *Analysis) NodeRanking() []NodeTotals {
	out := make([]NodeTotals, 0, len(a.Nodes))
	for _, n := range a.Nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// WriteTree renders the span and its descendants as an indented tree:
// one line per span with its hop totals, one line per semantic record.
func (s *Span) WriteTree(w io.Writer) error {
	return s.writeTree(w, "")
}

func (s *Span) writeTree(w io.Writer, indent string) error {
	line := fmt.Sprintf("%s%s#%d", indent, s.Op, s.ID)
	if s.Detail != "" {
		line += " " + s.Detail
	}
	line += fmt.Sprintf(" node=%d hops=%d", s.Node, s.Hops())
	if lost := s.Lost(); lost > 0 {
		line += fmt.Sprintf(" lost=%d", lost)
	}
	if d := s.Duration(); d > 0 {
		line += fmt.Sprintf(" t=%v", d)
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, it := range s.Items {
		if it.Child != nil {
			if err := it.Child.writeTree(w, indent+"  "); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, indent+"  "+formatRecord(it.Record)); err != nil {
			return err
		}
	}
	return nil
}

// formatRecord renders one semantic record for the tree view.
func formatRecord(ev *Event) string {
	withDetail := func(verb, counted string) string {
		line := verb
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		line += fmt.Sprintf(" node=%d", ev.Node)
		if counted != "" {
			line += fmt.Sprintf(" %s=%d", counted, ev.N)
		}
		return line
	}
	switch ev.Type {
	case TypePlace:
		return withDetail("place", "")
	case TypeFanout:
		return withDetail("fanout", "cells")
	case TypeResolve:
		return withDetail("resolve", "matches")
	case TypeReply:
		return withDetail("reply", "events")
	case TypeNotify:
		return fmt.Sprintf("notify sink=%d", ev.Node)
	case TypeFault:
		return fmt.Sprintf("fault node=%d", ev.Node)
	default:
		return withDetail(ev.Type.String(), "n")
	}
}
