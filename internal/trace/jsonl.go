package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON encodes the Type as its wire name.
func (t Type) MarshalJSON() ([]byte, error) {
	name, ok := typeNames[t]
	if !ok {
		return nil, fmt.Errorf("trace: cannot marshal unknown type %d", int(t))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a wire name back into a Type.
func (t *Type) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	typ, err := TypeFromString(name)
	if err != nil {
		return err
	}
	*t = typ
	return nil
}

// WriteJSONL writes events to w, one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL stream produced by WriteJSONL. Blank lines are
// skipped.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
