// Package trace records structured, causally-grouped events from a
// simulation run: per-hop radio transmissions, insertion placements,
// splitter fan-outs, cell resolves, reply aggregations, continuous-query
// pushes, and fault injections. Events carry virtual timestamps from the
// discrete-event clock and are organized into spans — one span per
// top-level operation (insert, query, subscribe, node failure), with
// sub-spans for per-Pool fan-out — so a trace can be replayed into the
// exact hop tree a query induced.
//
// A nil *Tracer is the disabled tracer: every method is a guarded no-op,
// so instrumented hot paths (network.Transmit in particular) pay only a
// nil pointer compare when tracing is off. Instrumentation sites that
// compute event details (fmt.Sprintf of cell ids and the like) must guard
// with Enabled so disabled runs never pay for formatting.
package trace

import (
	"fmt"
	"time"
)

// Type classifies trace events.
type Type int

// Event types.
const (
	// TypeSpanStart opens a span (Op, Node, Parent are set).
	TypeSpanStart Type = iota + 1
	// TypeSpanEnd closes the span.
	TypeSpanEnd
	// TypeHop is one per-hop radio transmission (From, To, Kind, Bytes,
	// Frames; Lost marks frames dropped by the lossy-link model).
	TypeHop
	// TypeBroadcast is one local broadcast (From, Kind, Bytes, Frames; N
	// is the number of neighbours reached).
	TypeBroadcast
	// TypePlace is an insertion placement decision: Node is the index
	// node (or zone owner) chosen, Detail names the cell or zone.
	TypePlace
	// TypeFanout is a splitter (or dissemination) fan-out: Node is the
	// splitter, N the number of cells (or zones) addressed.
	TypeFanout
	// TypeResolve is one cell/zone resolve: Node is the index node
	// scanned, N the number of matching events.
	TypeResolve
	// TypeReply is a reply aggregation: Node is the aggregating node, N
	// the number of events carried back.
	TypeReply
	// TypeNotify is one continuous-query push: Node is the notified sink.
	TypeNotify
	// TypeFault is a fault injection: Node is the failed node. Detail
	// "crash" marks the instant a node's radio goes dead, "recover" the
	// instant it rejoins — the boundaries latency attribution uses to
	// build repair-interference windows.
	TypeFault
	// TypeWait marks an operation entering a service or station queue:
	// Node is the queueing node, N the queue depth behind it.
	TypeWait
	// TypeServe marks the matching service start (the instant the node
	// actually begins work); the Wait→Serve gap is pure queueing delay.
	TypeServe
	// TypeRepair marks repair-protocol progress on Node; Detail "done"
	// closes the node's repair-interference window.
	TypeRepair
)

// typeNames maps Type values to their wire names.
var typeNames = map[Type]string{
	TypeSpanStart: "span_start",
	TypeSpanEnd:   "span_end",
	TypeHop:       "hop",
	TypeBroadcast: "broadcast",
	TypePlace:     "place",
	TypeFanout:    "fanout",
	TypeResolve:   "resolve",
	TypeReply:     "reply",
	TypeNotify:    "notify",
	TypeFault:     "fault",
	TypeWait:      "wait",
	TypeServe:     "serve",
	TypeRepair:    "repair",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// TypeFromString parses a wire name back into a Type.
func TypeFromString(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event type %q", s)
}

// Op names the operation a span covers.
type Op string

// Span operations.
const (
	OpInsert      Op = "insert"
	OpQuery       Op = "query"
	OpFanout      Op = "fanout" // per-Pool sub-span of a query
	OpSubscribe   Op = "subscribe"
	OpUnsubscribe Op = "unsubscribe"
	OpFail        Op = "fail"
	// OpRetry is a recovery detour sub-span: an alternate-splitter
	// re-plan, a mirror failover, or a reply re-send. Time spent inside
	// an OpRetry subtree is attributed to the retry phase.
	OpRetry Op = "retry"
)

// Event is one trace record. Node fields not applicable to the event type
// hold -1.
type Event struct {
	// T is the virtual timestamp (zero when the run has no scheduler).
	T time.Duration `json:"t"`
	// Span is the id of the owning span; 0 marks background traffic
	// recorded outside any span.
	Span uint64 `json:"span,omitempty"`
	// Type discriminates the record.
	Type Type `json:"type"`
	// Op is the span operation (span_start only).
	Op Op `json:"op,omitempty"`
	// Parent is the enclosing span id (span_start only).
	Parent uint64 `json:"parent,omitempty"`
	// From and To are the hop endpoints (hop and broadcast records).
	From int `json:"from"`
	To   int `json:"to"`
	// Kind is the traffic class of a hop (network.Kind.String()).
	Kind string `json:"kind,omitempty"`
	// Bytes and Frames are the payload size and frame count of a hop.
	Bytes  int `json:"bytes,omitempty"`
	Frames int `json:"frames,omitempty"`
	// Lost marks a hop dropped by the lossy-link model.
	Lost bool `json:"lost,omitempty"`
	// NLost is the number of receivers a broadcast frame failed to reach
	// under the lossy-link model (broadcast records only).
	NLost int `json:"nlost,omitempty"`
	// Node is the acting node of a semantic event.
	Node int `json:"node"`
	// N is a generic count: cells fanned out to, events matched, events
	// aggregated, neighbours reached.
	N int `json:"n,omitempty"`
	// Detail is a short human-readable qualifier (cell id, pool, zone).
	Detail string `json:"detail,omitempty"`
}

// Clock supplies virtual timestamps; *sim.Scheduler implements it. A nil
// Clock pins every timestamp to zero.
type Clock interface {
	Now() time.Duration
}

// Tracer accumulates events in memory. The zero-cost disabled tracer is
// the nil pointer; construct enabled tracers with New.
type Tracer struct {
	clock  Clock
	events []Event
	stack  []uint64
	nextID uint64

	// limit > 0 makes the tracer a fixed-capacity flight recorder (see
	// NewRing): once len(events) == limit, head is the ring's oldest
	// slot and every append overwrites it.
	limit   int
	head    int
	dropped uint64
}

// New returns an enabled Tracer stamping events from clock (nil clock:
// all timestamps zero).
func New(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// NewRing returns an enabled Tracer that keeps only the most recent
// capacity events — an always-on flight recorder whose memory is bounded
// regardless of run length. Once full, each append evicts the oldest
// event and increments Dropped. Evicted traces analyze fine: Analyze
// tolerates the resulting unbalanced streams and flags them Truncated.
// capacity < 1 is treated as 1.
func NewRing(clock Clock, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{clock: clock, limit: capacity}
}

// emit appends one event, evicting the oldest when the tracer is a full
// ring.
func (t *Tracer) emit(ev Event) {
	if t.limit > 0 && len(t.events) == t.limit {
		t.events[t.head] = ev
		t.head++
		if t.head == t.limit {
			t.head = 0
		}
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Capacity returns the ring capacity, or 0 for an unbounded tracer.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.limit
}

// Dropped returns the number of events evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

// current returns the innermost open span id, or 0.
func (t *Tracer) current() uint64 {
	if len(t.stack) == 0 {
		return 0
	}
	return t.stack[len(t.stack)-1]
}

// Begin opens a span for op at node (detail optional) nested under the
// currently open span, and returns its id. On the nil tracer it returns 0.
func (t *Tracer) Begin(op Op, node int, detail string) uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	t.emit(Event{
		T: t.now(), Span: id, Type: TypeSpanStart, Op: op,
		Parent: t.current(), From: -1, To: -1, Node: node, Detail: detail,
	})
	t.stack = append(t.stack, id)
	return id
}

// BeginAt opens a span for op at node as a child of parent, without
// touching the ambient span stack. It is the span opener for operations
// whose lifetime extends across scheduler callbacks (actor-engine
// queries, load-harness operations): the caller keeps the id, brackets
// each callback with PushSpan/PopSpan, and closes with EndSpan. On the
// nil tracer it returns 0.
func (t *Tracer) BeginAt(parent uint64, op Op, node int, detail string) uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	t.emit(Event{
		T: t.now(), Span: id, Type: TypeSpanStart, Op: op,
		Parent: parent, From: -1, To: -1, Node: node, Detail: detail,
	})
	return id
}

// EndSpan closes span id at the current clock, regardless of the span
// stack. EndSpan of 0 is a no-op.
func (t *Tracer) EndSpan(id uint64) {
	if t == nil || id == 0 {
		return
	}
	t.emit(Event{
		T: t.now(), Span: id, Type: TypeSpanEnd, From: -1, To: -1, Node: -1,
	})
}

// PushSpan makes id the ambient span for subsequently recorded events.
// Balance with PopSpan. No-op on the nil tracer.
func (t *Tracer) PushSpan(id uint64) {
	if t == nil {
		return
	}
	t.stack = append(t.stack, id)
}

// PopSpan undoes the innermost PushSpan (or Begin). Unbalanced calls are
// no-ops.
func (t *Tracer) PopSpan() {
	if t == nil || len(t.stack) == 0 {
		return
	}
	t.stack = t.stack[:len(t.stack)-1]
}

// CurrentSpan returns the innermost ambient span id, or 0.
func (t *Tracer) CurrentSpan() uint64 {
	if t == nil {
		return 0
	}
	return t.current()
}

// End closes the innermost open span. Unbalanced End calls are no-ops.
func (t *Tracer) End() {
	if t == nil || len(t.stack) == 0 {
		return
	}
	id := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	t.emit(Event{
		T: t.now(), Span: id, Type: TypeSpanEnd, From: -1, To: -1, Node: -1,
	})
}

// Hop records one per-hop transmission under the current span.
func (t *Tracer) Hop(from, to int, kind string, bytes, frames int, lost bool) {
	if t == nil {
		return
	}
	t.emit(Event{
		T: t.now(), Span: t.current(), Type: TypeHop,
		From: from, To: to, Kind: kind, Bytes: bytes, Frames: frames,
		Lost: lost, Node: -1,
	})
}

// Broadcast records one local broadcast reaching n neighbours; lost
// counts the receivers the frame was dropped on by the lossy-link model.
func (t *Tracer) Broadcast(from int, kind string, bytes, frames, n, lost int) {
	if t == nil {
		return
	}
	t.emit(Event{
		T: t.now(), Span: t.current(), Type: TypeBroadcast,
		From: from, To: -1, Kind: kind, Bytes: bytes, Frames: frames,
		Node: -1, N: n, NLost: lost,
	})
}

// Record appends a semantic event (placement, fan-out, resolve, reply,
// notify, fault) under the current span.
func (t *Tracer) Record(typ Type, node, n int, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{
		T: t.now(), Span: t.current(), Type: typ,
		From: -1, To: -1, Node: node, N: n, Detail: detail,
	})
}

// RecordAt is Record with an explicit timestamp. It lets an
// instrumentation site stamp an event at a known virtual time (a service
// start computed from a busy-until watermark) without scheduling a
// callback for the sole purpose of recording it — keeping traced and
// untraced runs byte-identical in event order. Consumers must not assume
// the event slice is sorted by T.
func (t *Tracer) RecordAt(at time.Duration, typ Type, node, n int, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{
		T: at, Span: t.current(), Type: typ,
		From: -1, To: -1, Node: node, N: n, Detail: detail,
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in append order. The slice is owned
// by the tracer; callers must not mutate it. A wrapped ring allocates a
// fresh ordered copy (oldest surviving event first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.dropped == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Reset drops all recorded events and open spans, keeping the clock and
// ring capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
	t.stack = t.stack[:0]
	t.nextID = 0
	t.head = 0
	t.dropped = 0
}
