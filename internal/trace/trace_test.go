package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable Clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestNilTracerIsDisabledNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	// None of these may panic, and nothing may be recorded.
	if id := tr.Begin(OpQuery, 1, "x"); id != 0 {
		t.Errorf("Begin on nil tracer = %d, want 0", id)
	}
	tr.Record(TypeResolve, 2, 3, "c")
	tr.Hop(0, 1, "query", 8, 1, false)
	tr.Broadcast(0, "control", 8, 1, 4, 0)
	tr.End()
	tr.Reset()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
}

func TestSpanNestingAndTimestamps(t *testing.T) {
	clock := &fakeClock{}
	tr := New(clock)
	outer := tr.Begin(OpQuery, 7, "")
	clock.t = 5 * time.Millisecond
	tr.Hop(7, 8, "query", 16, 1, false)
	inner := tr.Begin(OpFanout, 8, "P1")
	if outer == 0 || inner == 0 || outer == inner {
		t.Fatalf("span ids: outer=%d inner=%d", outer, inner)
	}
	tr.Record(TypeResolve, 9, 2, "C(1,2)")
	clock.t = 10 * time.Millisecond
	tr.End()
	tr.End()

	evs := tr.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	if evs[0].Type != TypeSpanStart || evs[0].Span != outer || evs[0].Parent != 0 {
		t.Errorf("outer start = %+v", evs[0])
	}
	if evs[1].Span != outer || evs[1].T != 5*time.Millisecond {
		t.Errorf("hop = %+v", evs[1])
	}
	if evs[2].Type != TypeSpanStart || evs[2].Parent != outer {
		t.Errorf("inner start parent = %d, want %d", evs[2].Parent, outer)
	}
	if evs[3].Span != inner {
		t.Errorf("resolve attributed to span %d, want %d", evs[3].Span, inner)
	}
	if evs[4].Span != inner || evs[5].Span != outer {
		t.Errorf("end order: %d then %d, want %d then %d", evs[4].Span, evs[5].Span, inner, outer)
	}
	if evs[5].T != 10*time.Millisecond {
		t.Errorf("outer end at %v", evs[5].T)
	}
}

func TestUnbalancedEndIsNoOp(t *testing.T) {
	tr := New(nil)
	tr.End() // nothing open
	tr.Begin(OpInsert, 1, "")
	tr.End()
	tr.End() // extra
	if got := tr.Len(); got != 2 {
		t.Errorf("events = %d, want 2", got)
	}
}

func TestHopOutsideSpanIsBackground(t *testing.T) {
	tr := New(nil)
	tr.Hop(1, 2, "control", 8, 1, false)
	a, err := Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if a.BackgroundFrames != 1 {
		t.Errorf("background frames = %d, want 1", a.BackgroundFrames)
	}
}

func TestResetClearsState(t *testing.T) {
	tr := New(nil)
	tr.Begin(OpQuery, 0, "")
	tr.Hop(0, 1, "query", 8, 1, false)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("events after reset: %d", tr.Len())
	}
	// Span ids restart and there is no dangling open span.
	if id := tr.Begin(OpQuery, 0, ""); id != 1 {
		t.Errorf("first span after reset = %d, want 1", id)
	}
	if tr.Events()[0].Parent != 0 {
		t.Error("span after reset inherited a stale parent")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	clock := &fakeClock{t: 3 * time.Second}
	tr := New(clock)
	tr.Begin(OpInsert, 4, "")
	tr.Record(TypePlace, 9, 1, "P1 C(2,3)")
	tr.Hop(4, 5, "insert", 40, 2, true)
	tr.Broadcast(5, "control", 8, 1, 3, 0)
	tr.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tr.Len() {
		t.Fatalf("round trip: %d events, want %d", len(got), tr.Len())
	}
	for i, ev := range tr.Events() {
		if got[i] != ev {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], ev)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"warp","from":0,"to":1,"node":-1}` + "\n")); err == nil {
		t.Error("unknown event type accepted")
	}
}

func TestTypeStringAndParse(t *testing.T) {
	for typ, name := range typeNames {
		if typ.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), name)
		}
		parsed, err := TypeFromString(name)
		if err != nil || parsed != typ {
			t.Errorf("TypeFromString(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := TypeFromString("bogus"); err == nil {
		t.Error("bogus type name accepted")
	}
}
