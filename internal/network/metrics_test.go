package network

import (
	"errors"
	"testing"

	"pooldcs/internal/geo"
	"pooldcs/internal/metrics"
	"pooldcs/internal/rng"
)

func TestWithMetricsMirrorsCounters(t *testing.T) {
	reg := metrics.New()
	n := New(chainLayout(t), WithMetrics(reg))
	if err := n.Transmit(0, 1, KindInsert, 32); err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(1, 2, KindQuery, 16); err != nil {
		t.Fatal(err)
	}
	n.Broadcast(1, KindControl, 8)

	tx := reg.NodeValues("net_tx_frames_total")
	rx := reg.NodeValues("net_rx_frames_total")
	for id := range tx {
		wantTx, wantRx := n.NodeLoad(id)
		if uint64(tx[id]) != wantTx || uint64(rx[id]) != wantRx {
			t.Errorf("node %d: metrics tx/rx = %v/%v, network %d/%d", id, tx[id], rx[id], wantTx, wantRx)
		}
	}
	snap := n.Snapshot()
	if got := reg.Value("net_messages_total"); uint64(got) != snap.Total() {
		t.Errorf("net_messages_total = %v, snapshot total %d", got, snap.Total())
	}
	if got := reg.Value("net_energy_joules"); got != snap.EnergyJ {
		t.Errorf("net_energy_joules = %v, snapshot %v", got, snap.EnergyJ)
	}
	if got := reg.NodeValues("net_node_energy_joules"); got[0] != n.NodeEnergy(0) {
		t.Errorf("per-node energy gauge = %v, want %v", got[0], n.NodeEnergy(0))
	}
}

func TestDropsAttributedToSender(t *testing.T) {
	reg := metrics.New()
	n := New(chainLayout(t), WithMetrics(reg))
	// Frames into a dead receiver count as sender drops.
	n.FailNode(1)
	if err := n.Transmit(0, 1, KindInsert, 8); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	// Frames eaten by a certain-loss burst too.
	n.RecoverNode(1)
	cancel := n.AddRegionLoss(geo.RectFromCorners(geo.Pt(25, -5), geo.Pt(35, 5)), 1.0, rng.New(1))
	if err := n.Transmit(0, 1, KindInsert, 8); !errors.Is(err, ErrFrameLost) {
		t.Fatalf("err = %v, want ErrFrameLost", err)
	}
	cancel()
	if n.Drops() != 2 || n.NodeDrops(0) != 2 || n.NodeDrops(1) != 0 {
		t.Fatalf("drops = %d, node0 = %d, node1 = %d", n.Drops(), n.NodeDrops(0), n.NodeDrops(1))
	}
	if got := reg.NodeValues("net_dropped_frames_total"); got[0] != 2 {
		t.Fatalf("dropped-frames metric = %v", got)
	}
	if d := n.Snapshot().Drops; d != 2 {
		t.Fatalf("snapshot drops = %d", d)
	}
}

// TestBurstDropsAreIterationOrderStable is the property the churn burst
// column depends on: whether a given frame on a given link drops must
// not change when unrelated traffic interleaves differently.
func TestBurstDropsAreIterationOrderStable(t *testing.T) {
	run := func(interleave bool) []bool {
		n := New(chainLayout(t))
		n.AddRegionLoss(geo.RectFromCorners(geo.Pt(25, -5), geo.Pt(35, 5)), 0.5, rng.New(7))
		var fates []bool
		for i := 0; i < 40; i++ {
			if interleave {
				// Unrelated traffic on another link inside the region.
				_ = n.Transmit(2, 1, KindControl, 8)
			}
			err := n.Transmit(0, 1, KindQuery, 8)
			fates = append(fates, errors.Is(err, ErrFrameLost))
		}
		return fates
	}
	plain, interleaved := run(false), run(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("frame %d on 0→1 changed fate (%v → %v) because of unrelated traffic",
				i, plain[i], interleaved[i])
		}
	}
}
