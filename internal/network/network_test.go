package network

import (
	"errors"
	"math"
	"testing"
	"time"

	"pooldcs/internal/field"
	"pooldcs/internal/geo"
	"pooldcs/internal/rng"
	"pooldcs/internal/sim"
	"pooldcs/internal/trace"
)

func chainLayout(t *testing.T) *field.Layout {
	t.Helper()
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(30, 0), geo.Pt(60, 0), geo.Pt(200, 0)}
	l, err := field.FromPositions(pts, 250, 40)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("Kind %d has empty String", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty String")
	}
}

func TestTransmitCountsByKind(t *testing.T) {
	n := New(chainLayout(t))
	if err := n.Transmit(0, 1, KindInsert, 32); err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(1, 2, KindQuery, 16); err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(2, 1, KindQuery, 16); err != nil {
		t.Fatal(err)
	}
	c := n.Snapshot()
	if c.Messages[KindInsert] != 1 || c.Messages[KindQuery] != 2 {
		t.Errorf("messages = %v", c.Messages)
	}
	if c.Bytes[KindInsert] != 32 || c.Bytes[KindQuery] != 32 {
		t.Errorf("bytes = %v", c.Bytes)
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
}

func TestTotalDataExcludesControl(t *testing.T) {
	n := New(chainLayout(t))
	_ = n.Transmit(0, 1, KindQuery, 8)
	_ = n.Transmit(0, 1, KindControl, 8)
	c := n.Snapshot()
	if c.TotalData() != 1 {
		t.Errorf("TotalData = %d, want 1", c.TotalData())
	}
}

func TestTransmitOutOfRange(t *testing.T) {
	n := New(chainLayout(t))
	err := n.Transmit(2, 3, KindInsert, 8) // 140 m apart, range 40 m
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LinkError", err)
	}
	if le.From != 2 || le.To != 3 {
		t.Errorf("LinkError = %+v", le)
	}
	if c := n.Snapshot(); c.Total() != 0 {
		t.Error("failed transmission must not be counted")
	}
}

func TestTransmitSelf(t *testing.T) {
	n := New(chainLayout(t))
	if err := n.Transmit(1, 1, KindInsert, 8); err == nil {
		t.Error("self-transmission accepted")
	}
}

func TestInRange(t *testing.T) {
	n := New(chainLayout(t))
	if !n.InRange(0, 1) {
		t.Error("adjacent nodes should be in range")
	}
	if n.InRange(0, 3) {
		t.Error("distant nodes should not be in range")
	}
}

func TestEnergyAccounting(t *testing.T) {
	n := New(chainLayout(t), WithEnergyModel(EnergyModel{Elec: 1, Amp: 0.5}))
	// 1 byte = 8 bits over 30 m: tx = 1*8 + 0.5*8*900 = 3608; rx = 8.
	if err := n.Transmit(0, 1, KindInsert, 1); err != nil {
		t.Fatal(err)
	}
	want := 3608.0 + 8.0
	if got := n.Snapshot().EnergyJ; got != want {
		t.Errorf("EnergyJ = %v, want %v", got, want)
	}
}

func TestDefaultEnergyModelMagnitude(t *testing.T) {
	n := New(chainLayout(t))
	_ = n.Transmit(0, 1, KindInsert, 100)
	e := n.Snapshot().EnergyJ
	// 800 bits at ~50nJ/bit twice plus amp term: order of 1e-4 J.
	if e <= 0 || e > 1e-3 {
		t.Errorf("default energy per message = %v J, implausible", e)
	}
}

func TestNodeLoadAndHotspot(t *testing.T) {
	n := New(chainLayout(t))
	for i := 0; i < 5; i++ {
		_ = n.Transmit(0, 1, KindQuery, 8)
	}
	_ = n.Transmit(1, 2, KindReply, 8)
	tx, rx := n.NodeLoad(1)
	if tx != 1 || rx != 5 {
		t.Errorf("NodeLoad(1) = %d tx, %d rx", tx, rx)
	}
	node, load := n.MaxNodeLoad()
	if node != 1 || load != 6 {
		t.Errorf("MaxNodeLoad = node %d load %d, want node 1 load 6", node, load)
	}
}

func TestDiff(t *testing.T) {
	n := New(chainLayout(t))
	_ = n.Transmit(0, 1, KindInsert, 10)
	before := n.Snapshot()
	_ = n.Transmit(0, 1, KindQuery, 20)
	_ = n.Transmit(1, 0, KindQuery, 20)
	d := n.Diff(before)
	if d.Messages[KindQuery] != 2 || d.Messages[KindInsert] != 0 {
		t.Errorf("Diff messages = %v", d.Messages)
	}
	if d.Bytes[KindQuery] != 40 {
		t.Errorf("Diff bytes = %v", d.Bytes)
	}
	if d.EnergyJ <= 0 {
		t.Error("Diff energy should be positive")
	}
}

func TestReset(t *testing.T) {
	n := New(chainLayout(t))
	_ = n.Transmit(0, 1, KindInsert, 10)
	n.Reset()
	if c := n.Snapshot(); c.Total() != 0 || c.EnergyJ != 0 {
		t.Errorf("counters after Reset: %+v", c)
	}
	if _, load := n.MaxNodeLoad(); load != 0 {
		t.Error("node loads not reset")
	}
}

func TestSendSynchronousDelivery(t *testing.T) {
	n := New(chainLayout(t))
	delivered := false
	if err := n.Send(0, 1, KindQuery, 8, func() { delivered = true }); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Error("synchronous Send did not deliver")
	}
}

func TestSendScheduledDelivery(t *testing.T) {
	s := sim.NewScheduler()
	n := New(chainLayout(t), WithScheduler(s, 5*time.Millisecond))
	delivered := time.Duration(-1)
	if err := n.Send(0, 1, KindQuery, 8, func() { delivered = s.Now() }); err != nil {
		t.Fatal(err)
	}
	if delivered != -1 {
		t.Fatal("delivery ran before scheduler")
	}
	s.Run()
	if delivered != 5*time.Millisecond {
		t.Errorf("delivered at %v, want 5ms", delivered)
	}
}

func TestSendFailureDoesNotDeliver(t *testing.T) {
	n := New(chainLayout(t))
	delivered := false
	if err := n.Send(0, 3, KindQuery, 8, func() { delivered = true }); err == nil {
		t.Fatal("expected link error")
	}
	if delivered {
		t.Error("failed Send must not deliver")
	}
}

func TestHopCountAcrossGeneratedNetwork(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	n := New(l)
	// Transmit along a neighbour chain and confirm counts add up.
	cur, hops := 0, 0
	for next := range 5 {
		nbrs := l.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		to := nbrs[next%len(nbrs)]
		if err := n.Transmit(cur, to, KindInsert, 8); err != nil {
			t.Fatal(err)
		}
		cur = to
		hops++
	}
	if got := n.Snapshot().Total(); got != uint64(hops) {
		t.Errorf("Total = %d, want %d", got, hops)
	}
}

func TestPerNodeEnergy(t *testing.T) {
	n := New(chainLayout(t), WithEnergyModel(EnergyModel{Elec: 1, Amp: 0}))
	if err := n.Transmit(0, 1, KindInsert, 1); err != nil { // 8 bits
		t.Fatal(err)
	}
	if tx := n.NodeEnergy(0); tx != 8 {
		t.Errorf("sender energy = %v, want 8", tx)
	}
	if rx := n.NodeEnergy(1); rx != 8 {
		t.Errorf("receiver energy = %v, want 8", rx)
	}
	if idle := n.NodeEnergy(2); idle != 0 {
		t.Errorf("idle node energy = %v, want 0", idle)
	}
	energies := n.NodeEnergies()
	if len(energies) != 4 || energies[0] != 8 {
		t.Errorf("NodeEnergies = %v", energies)
	}
	// The returned slice is a copy.
	energies[0] = 999
	if n.NodeEnergy(0) != 8 {
		t.Error("NodeEnergies exposed internal state")
	}
	n.Reset()
	if n.NodeEnergy(0) != 0 {
		t.Error("Reset did not clear node energy")
	}
}

func TestMTUFragmentation(t *testing.T) {
	n := New(chainLayout(t), WithMTU(32))
	if err := n.Transmit(0, 1, KindReply, 100); err != nil { // 4 frames
		t.Fatal(err)
	}
	if err := n.Transmit(0, 1, KindReply, 32); err != nil { // 1 frame
		t.Fatal(err)
	}
	if err := n.Transmit(0, 1, KindReply, 1); err != nil { // 1 frame
		t.Fatal(err)
	}
	c := n.Snapshot()
	if c.Messages[KindReply] != 6 {
		t.Errorf("fragmented messages = %d, want 6", c.Messages[KindReply])
	}
	if c.Bytes[KindReply] != 133 {
		t.Errorf("bytes = %d, want 133", c.Bytes[KindReply])
	}
	tx, _ := n.NodeLoad(0)
	if tx != 6 {
		t.Errorf("sender frame count = %d, want 6", tx)
	}
}

func TestNoMTUNoFragmentation(t *testing.T) {
	n := New(chainLayout(t))
	if err := n.Transmit(0, 1, KindReply, 10000); err != nil {
		t.Fatal(err)
	}
	if c := n.Snapshot(); c.Messages[KindReply] != 1 {
		t.Errorf("messages = %d, want 1 without MTU", c.Messages[KindReply])
	}
}

func TestBroadcastWithMTU(t *testing.T) {
	n := New(chainLayout(t), WithMTU(16))
	n.Broadcast(1, KindControl, 40) // 3 frames
	c := n.Snapshot()
	if c.Messages[KindControl] != 3 {
		t.Errorf("broadcast frames = %d, want 3", c.Messages[KindControl])
	}
}

func TestLossNeverOnZeroRate(t *testing.T) {
	n := New(chainLayout(t))
	for i := 0; i < 1000; i++ {
		if err := n.Transmit(0, 1, KindInsert, 4); err != nil {
			t.Fatalf("lossless network dropped a frame: %v", err)
		}
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	n := New(chainLayout(t), WithLossRate(0.5, rng.New(42)))
	lost := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if err := n.Transmit(0, 1, KindInsert, 4); errors.Is(err, ErrFrameLost) {
			lost++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if lost < trials/3 || lost > 2*trials/3 {
		t.Errorf("lost %d of %d at rate 0.5", lost, trials)
	}
	// Receiver never counted lost frames.
	_, rx := n.NodeLoad(1)
	if rx != uint64(trials-lost) {
		t.Errorf("receiver counted %d, want %d", rx, trials-lost)
	}
	// Sender paid for everything.
	tx, _ := n.NodeLoad(0)
	if tx != uint64(trials) {
		t.Errorf("sender counted %d, want %d", tx, trials)
	}
}

func TestEnergyModelValidate(t *testing.T) {
	cases := []struct {
		name  string
		model EnergyModel
		ok    bool
	}{
		{"default", DefaultEnergyModel(), true},
		{"zero", EnergyModel{}, true},
		{"negative elec", EnergyModel{Elec: -50e-9, Amp: 100e-12}, false},
		{"negative amp", EnergyModel{Elec: 50e-9, Amp: -1}, false},
		{"nan elec", EnergyModel{Elec: math.NaN()}, false},
		{"nan amp", EnergyModel{Amp: math.NaN()}, false},
	}
	for _, c := range cases {
		err := c.model.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid model accepted", c.name)
		}
	}
}

func TestWithEnergyModelPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithEnergyModel accepted a negative per-bit energy")
		}
	}()
	WithEnergyModel(EnergyModel{Elec: -1})
}

func TestTransmitRecordsTraceHops(t *testing.T) {
	tr := trace.New(nil)
	n := New(chainLayout(t), WithTracer(tr), WithMTU(16))
	if err := n.Transmit(0, 1, KindInsert, 40); err != nil { // 3 frames
		t.Fatal(err)
	}
	if err := n.Transmit(1, 2, KindQuery, 8); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d trace events, want 2", len(evs))
	}
	want := trace.Event{Type: trace.TypeHop, From: 0, To: 1, Kind: "insert",
		Bytes: 40, Frames: 3, Node: -1}
	if evs[0] != want {
		t.Errorf("hop event = %+v, want %+v", evs[0], want)
	}
	if evs[1].Kind != "query" || evs[1].Frames != 1 {
		t.Errorf("second hop = %+v", evs[1])
	}
}

func TestTransmitRecordsLostFrames(t *testing.T) {
	tr := trace.New(nil)
	n := New(chainLayout(t), WithTracer(tr), WithLossRate(0.5, rng.New(7)))
	lost := 0
	for i := 0; i < 100; i++ {
		if err := n.Transmit(0, 1, KindInsert, 4); errors.Is(err, ErrFrameLost) {
			lost++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	var traceLost int
	for _, ev := range tr.Events() {
		if ev.Lost {
			traceLost++
		}
	}
	if lost == 0 {
		t.Fatal("no frames lost at rate 0.5")
	}
	if traceLost != lost {
		t.Errorf("trace recorded %d lost frames, network dropped %d", traceLost, lost)
	}
	if tr.Len() != 100 {
		t.Errorf("trace has %d hops, want 100 (lost frames included)", tr.Len())
	}
}

func TestBroadcastRecordsTrace(t *testing.T) {
	tr := trace.New(nil)
	n := New(chainLayout(t), WithTracer(tr))
	nbrs := n.Broadcast(1, KindControl, 8)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Type != trace.TypeBroadcast {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].From != 1 || evs[0].Kind != "control" || evs[0].N != len(nbrs) {
		t.Errorf("broadcast event = %+v, want from=1 kind=control n=%d", evs[0], len(nbrs))
	}
}

// TestFailedTransmitNotTraced pins the invariant behind the trace/counter
// consistency check: link errors increment neither counters nor trace.
func TestFailedTransmitNotTraced(t *testing.T) {
	tr := trace.New(nil)
	n := New(chainLayout(t), WithTracer(tr))
	if err := n.Transmit(2, 3, KindInsert, 8); err == nil {
		t.Fatal("expected link error")
	}
	if tr.Len() != 0 {
		t.Errorf("link error produced %d trace events", tr.Len())
	}
}

// TestTraceMatchesCountersByKind cross-checks the tracer against the
// accounting layer over mixed unicast, broadcast, fragmented, and lossy
// traffic: per-kind frame and byte totals must agree exactly.
func TestTraceMatchesCountersByKind(t *testing.T) {
	tr := trace.New(nil)
	n := New(chainLayout(t), WithTracer(tr), WithMTU(16), WithLossRate(0.3, rng.New(3)))
	links := [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}}
	for i := 0; i < 200; i++ {
		kind := Kinds()[i%len(Kinds())]
		link := links[i%len(links)]
		err := n.Transmit(link[0], link[1], kind, 4+i%40)
		if err != nil && !errors.Is(err, ErrFrameLost) {
			t.Fatal(err)
		}
		if i%10 == 0 {
			n.Broadcast(i%3, KindControl, 24)
		}
	}
	a, err := trace.Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	c := n.Snapshot()
	for _, k := range Kinds() {
		kt := a.ByKind[k.String()]
		if kt.Frames != c.Messages[k] {
			t.Errorf("%v frames: trace %d, counters %d", k, kt.Frames, c.Messages[k])
		}
		if kt.Bytes != c.Bytes[k] {
			t.Errorf("%v bytes: trace %d, counters %d", k, kt.Bytes, c.Bytes[k])
		}
	}
	if a.TotalFrames() != c.Total() {
		t.Errorf("total frames: trace %d, counters %d", a.TotalFrames(), c.Total())
	}
}
