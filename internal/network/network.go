// Package network models the radio layer of the sensor network: per-hop
// message transmission over the unit-disc links of a field.Layout, with
// message, byte, energy, and per-node load accounting.
//
// The paper's evaluation metric is the number of messages exchanged among
// sensors while processing queries; Counters captures that, split by
// traffic class so that insertion and query costs can be reported
// separately (§5.2). Energy uses the first-order radio model common in the
// WSN literature, which the hotspot experiments use to reason about node
// lifetime.
package network

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pooldcs/internal/field"
	"pooldcs/internal/geo"
	"pooldcs/internal/metrics"
	"pooldcs/internal/rng"
	"pooldcs/internal/sim"
	"pooldcs/internal/trace"
)

// Kind classifies traffic for accounting.
type Kind int

// Traffic classes.
const (
	KindInsert  Kind = iota + 1 // event storage traffic
	KindQuery                   // query dissemination
	KindReply                   // result return traffic
	KindControl                 // beacons, workload-sharing coordination
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindQuery:
		return "query"
	case KindReply:
		return "reply"
	case KindControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every traffic class in display order.
func Kinds() []Kind {
	return []Kind{KindInsert, KindQuery, KindReply, KindControl}
}

// EnergyModel holds the first-order radio model parameters. Transmitting b
// bits over distance d costs Elec·b + Amp·b·d²; receiving costs Elec·b.
type EnergyModel struct {
	// Elec is the electronics energy per bit in joules (default 50 nJ).
	Elec float64
	// Amp is the amplifier energy per bit per m² in joules (default 100 pJ).
	Amp float64
	// Budget, when positive, is each node's battery in joules. A node
	// whose radio energy crosses the budget is depleted: it stops
	// transmitting and receiving, and the depletion watcher (if any) is
	// notified once. Zero means unlimited energy (the paper's model).
	Budget float64
}

// DefaultEnergyModel returns the standard first-order parameters.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{Elec: 50e-9, Amp: 100e-12}
}

// Validate rejects physically meaningless radio parameters. Negative
// per-bit energies would let traffic *recharge* nodes and silently corrupt
// every lifetime metric downstream.
func (m EnergyModel) Validate() error {
	if m.Elec < 0 || math.IsNaN(m.Elec) {
		return fmt.Errorf("network: electronics energy must be ≥ 0 J/bit, got %v", m.Elec)
	}
	if m.Amp < 0 || math.IsNaN(m.Amp) {
		return fmt.Errorf("network: amplifier energy must be ≥ 0 J/bit/m², got %v", m.Amp)
	}
	if m.Budget < 0 || math.IsNaN(m.Budget) {
		return fmt.Errorf("network: energy budget must be ≥ 0 J, got %v", m.Budget)
	}
	return nil
}

// Counters aggregates traffic totals.
type Counters struct {
	// Messages counts transmissions (one per hop) by kind.
	Messages map[Kind]uint64
	// Bytes counts payload bytes transmitted by kind.
	Bytes map[Kind]uint64
	// EnergyJ is the total radio energy spent in joules (tx + rx).
	EnergyJ float64
	// Drops counts frames the sender paid for that never arrived — the
	// lossy-link and burst models plus frames sent into dead receivers.
	Drops uint64
}

// Total returns the total number of messages across all kinds.
func (c Counters) Total() uint64 {
	var t uint64
	for _, v := range c.Messages {
		t += v
	}
	return t
}

// TotalData returns messages excluding control traffic, the paper's query
// processing cost metric.
func (c Counters) TotalData() uint64 {
	return c.Total() - c.Messages[KindControl]
}

// Network is the radio layer over a deployment.
type Network struct {
	layout *field.Layout
	energy EnergyModel

	msgs    [numKinds]uint64
	bytes   [numKinds]uint64
	energyJ float64

	// nodeTx/nodeRx track per-node load for the hotspot experiments.
	nodeTx []uint64
	nodeRx []uint64
	// nodeDrop counts, per sender, frames paid for that never arrived.
	nodeDrop []uint64
	drops    uint64
	// nodeEnergy tracks radio energy per node for lifetime analysis.
	nodeEnergy []float64

	// mtu, when positive, fragments payloads into ⌈size/mtu⌉ frames, each
	// counted as one message.
	mtu int

	// lossRate, when positive, drops each transmission with this
	// probability (drawn from lossSrc). Dropped frames still cost the
	// sender energy and count as messages — the receiver just never gets
	// them.
	lossRate float64
	lossSrc  *rng.Source

	// bursts are transient regional loss episodes (chaos injection): a
	// frame whose sender or receiver sits inside an active burst region is
	// dropped independently with the burst's rate.
	bursts []*regionLoss

	// dead marks crashed nodes: they neither transmit nor receive.
	dead []bool
	// depleted marks nodes whose radio energy crossed the battery budget.
	depleted  []bool
	onDeplete func(id int)

	sched      *sim.Scheduler
	hopLatency time.Duration

	// reachedBuf backs the slice Broadcast returns; beaconing protocols
	// broadcast once per node per round, so reusing one buffer removes an
	// allocation per beacon.
	reachedBuf []int

	// tracer, when non-nil, receives one record per transmission. The
	// nil tracer costs one pointer compare on the hot path.
	tracer *trace.Tracer

	// Metric handles (nil when no registry is attached; nil handles
	// no-op, so the disabled cost is a few pointer compares per frame).
	mTx, mRx, mDrop *metrics.CounterVec // per node
	mMsgs, mBytes   *metrics.CounterVec // per traffic kind
}

// regionLoss is one active loss burst. Per-frame drop decisions hash
// (seed, from, to, nth frame on that directed link) instead of drawing
// from a shared rng stream, so whether a given frame drops does not
// depend on how traffic from unrelated links interleaves with it —
// message totals stay comparable across runs that reorder iteration.
type regionLoss struct {
	rect geo.Rect
	rate float64
	seed uint64
	// nth counts frames per directed link inside the burst.
	nth map[[2]int]uint64
}

// ErrFrameLost reports a transmission dropped by the lossy-link model.
// The frame was sent (and charged); it was not received.
var ErrFrameLost = errors.New("network: frame lost")

// ErrNodeDown reports a transmission involving a crashed or
// battery-depleted node. Unlike ErrFrameLost, retransmitting cannot help:
// the sender's link layer declares the neighbour dead after its ACK
// timeout, so callers should treat the hop as unreachable, not lossy.
var ErrNodeDown = errors.New("network: node down")

// Option configures a Network.
type Option interface {
	apply(*Network)
}

type optionFunc func(*Network)

func (f optionFunc) apply(n *Network) { f(n) }

// WithEnergyModel overrides the default radio energy model. Invalid
// parameters (negative or NaN per-bit energies) are a programming error
// and panic; pre-check with EnergyModel.Validate when the model comes
// from external configuration.
func WithEnergyModel(m EnergyModel) Option {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return optionFunc(func(n *Network) { n.energy = m })
}

// WithTracer attaches a structured-event tracer: every Transmit and
// Broadcast is recorded as a per-hop trace event under the tracer's
// current span.
func WithTracer(t *trace.Tracer) Option {
	return optionFunc(func(n *Network) { n.tracer = t })
}

// SetTracer attaches (or replaces) the per-hop tracer after
// construction: the hook the load harness's autopsy uses on deployments
// built without one.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer = t }

// WithMTU enables link-layer fragmentation: payloads larger than mtu
// bytes are split into ⌈size/mtu⌉ frames, each counted as one message.
// Real mote radios carry 30–100 byte frames; the default (no
// fragmentation) matches the paper's one-message-per-packet accounting.
func WithMTU(mtu int) Option {
	return optionFunc(func(n *Network) { n.mtu = mtu })
}

// WithLossRate makes every transmission fail independently with
// probability p (0 ≤ p < 1), deterministically from the given source.
// Senders still pay for lost frames; link-layer retransmission is the
// caller's job (dcs.Unicast retries automatically).
func WithLossRate(p float64, src *rng.Source) Option {
	return optionFunc(func(n *Network) {
		n.lossRate = p
		n.lossSrc = src
	})
}

// WithScheduler attaches a discrete-event scheduler so Send can deliver
// messages asynchronously with per-hop latency.
func WithScheduler(s *sim.Scheduler, hopLatency time.Duration) Option {
	return optionFunc(func(n *Network) {
		n.sched = s
		n.hopLatency = hopLatency
	})
}

// WithMetrics registers the radio's live metrics on reg: per-node
// tx/rx/dropped frame counters, per-kind message and byte counters, and
// function-backed per-node energy gauges. Dropped frames are attributed
// to the *sender* — the node that paid for the frame and whose ARQ will
// retry — covering both lossy-link losses and frames sent into dead
// receivers. A nil registry attaches nothing.
func WithMetrics(reg *metrics.Registry) Option {
	return optionFunc(func(n *Network) {
		if reg == nil {
			return
		}
		nn := n.layout.N()
		n.mTx = reg.NodeCounter("net_tx_frames_total", "frames transmitted per node", nn)
		n.mRx = reg.NodeCounter("net_rx_frames_total", "frames received per node", nn)
		n.mDrop = reg.NodeCounter("net_dropped_frames_total", "frames lost in flight, attributed to the sender", nn)
		kinds := make([]string, 0, len(Kinds()))
		for _, k := range Kinds() {
			kinds = append(kinds, k.String())
		}
		n.mMsgs = reg.CounterVec("net_messages_total", "transmissions by traffic kind", "kind", kinds)
		n.mBytes = reg.CounterVec("net_bytes_total", "payload bytes by traffic kind", "kind", kinds)
		reg.NodeGaugeFunc("net_node_energy_joules", "radio energy spent per node", nn, n.NodeEnergy)
		reg.GaugeFunc("net_energy_joules", "total radio energy spent", func() float64 { return n.energyJ })
		reg.GaugeFunc("net_nodes_down", "nodes currently crashed or battery-depleted", func() float64 {
			var down float64
			for i := range n.dead {
				if n.dead[i] || n.depleted[i] {
					down++
				}
			}
			return down
		})
	})
}

// New builds a Network over layout.
func New(layout *field.Layout, opts ...Option) *Network {
	n := &Network{
		layout:     layout,
		energy:     DefaultEnergyModel(),
		nodeTx:     make([]uint64, layout.N()),
		nodeRx:     make([]uint64, layout.N()),
		nodeDrop:   make([]uint64, layout.N()),
		nodeEnergy: make([]float64, layout.N()),
		dead:       make([]bool, layout.N()),
		depleted:   make([]bool, layout.N()),
	}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// Layout returns the deployment the network runs over.
func (n *Network) Layout() *field.Layout { return n.layout }

// LinkError reports an attempted transmission between nodes that are not
// radio neighbours.
type LinkError struct {
	From, To int
	Dist     float64
}

// Error implements error.
func (e *LinkError) Error() string {
	return fmt.Sprintf("network: no link %d→%d (distance %.1f m)", e.From, e.To, e.Dist)
}

// InRange reports whether from and to share a radio link.
func (n *Network) InRange(from, to int) bool {
	r := n.layout.Spec.RadioRange
	return n.layout.Pos(from).Dist2(n.layout.Pos(to)) <= r*r
}

// FailNode crashes a node: it stops transmitting and receiving until
// RecoverNode. Out-of-range ids are ignored.
func (n *Network) FailNode(id int) {
	if id >= 0 && id < len(n.dead) {
		if !n.dead[id] {
			// The crash marker opens the node's repair-interference
			// window for latency attribution.
			n.tracer.Record(trace.TypeFault, id, 0, "crash")
		}
		n.dead[id] = true
	}
}

// RecoverNode brings a crashed node back on the air. Depletion is not
// undone: a node with an empty battery stays silent.
func (n *Network) RecoverNode(id int) {
	if id >= 0 && id < len(n.dead) {
		if n.dead[id] {
			// The recovery marker closes any still-open
			// repair-interference window for the node.
			n.tracer.Record(trace.TypeFault, id, 0, "recover")
		}
		n.dead[id] = false
	}
}

// Alive reports whether the node is on the air: neither crashed nor
// battery-depleted.
func (n *Network) Alive(id int) bool {
	return !n.dead[id] && !n.depleted[id]
}

// Depleted reports whether the node's radio energy has crossed the
// battery budget.
func (n *Network) Depleted(id int) bool { return n.depleted[id] }

// OnDepleted registers fn to be called once per node, at the moment its
// radio energy crosses the battery budget. The callback fires inside
// Transmit/Broadcast; implementations that mutate protocol state should
// defer the heavy work to a scheduler event.
func (n *Network) OnDepleted(fn func(id int)) { n.onDeplete = fn }

// AddRegionLoss opens a transient regional loss burst: every frame whose
// sender or receiver lies inside rect is dropped independently with the
// given probability, on top of the base loss rate. src is consumed once
// to seed the burst; per-frame decisions then hash (seed, link, frame
// index on that link), so a frame's fate depends only on its own link's
// history — not on how traffic elsewhere interleaves with it. That
// iteration-order stability is what lets experiment tables report burst
// losses without the totals becoming order-dependent. The returned
// cancel function ends the burst.
func (n *Network) AddRegionLoss(rect geo.Rect, rate float64, src *rng.Source) (cancel func()) {
	b := &regionLoss{rect: rect, rate: rate, seed: uint64(src.Int63()), nth: make(map[[2]int]uint64)}
	n.bursts = append(n.bursts, b)
	return func() {
		for i, cur := range n.bursts {
			if cur == b {
				n.bursts = append(n.bursts[:i], n.bursts[i+1:]...)
				return
			}
		}
	}
}

// hashUnit maps (seed, from, to, nth) to a uniform value in [0,1) via a
// splitmix64 finalizer — a stateless per-frame coin flip.
func hashUnit(seed uint64, from, to int, nth uint64) float64 {
	x := seed ^ uint64(from)*0x9E3779B97F4A7C15 ^ uint64(to)*0xC2B2AE3D27D4EB4F ^ nth*0x165667B19E3779F9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// dropFrame draws whether the frame from→to is lost to the base loss
// model or any active regional burst.
func (n *Network) dropFrame(from, to int) bool {
	if n.lossRate > 0 && n.lossSrc.Bool(n.lossRate) {
		return true
	}
	for _, b := range n.bursts {
		if b.rect.ContainsClosed(n.layout.Pos(from)) || b.rect.ContainsClosed(n.layout.Pos(to)) {
			k := [2]int{from, to}
			i := b.nth[k]
			b.nth[k] = i + 1
			if hashUnit(b.seed, from, to, i) < b.rate {
				return true
			}
		}
	}
	return false
}

// countDrop books a lost frame against its sender.
func (n *Network) countDrop(from int, frames uint64) {
	n.nodeDrop[from] += frames
	n.drops += frames
	n.mDrop.Add(from, frames)
}

// chargeTx charges a transmission to the sender and checks its battery.
func (n *Network) chargeTx(from int, joules float64) {
	n.energyJ += joules
	n.nodeEnergy[from] += joules
	n.checkBudget(from)
}

// chargeRx charges a reception to the receiver and checks its battery.
func (n *Network) chargeRx(to int, joules float64) {
	n.energyJ += joules
	n.nodeEnergy[to] += joules
	n.checkBudget(to)
}

// checkBudget marks a node depleted (and notifies the watcher once) when
// its radio energy crosses the battery budget.
func (n *Network) checkBudget(id int) {
	if n.energy.Budget <= 0 || n.depleted[id] || n.nodeEnergy[id] < n.energy.Budget {
		return
	}
	n.depleted[id] = true
	if n.onDeplete != nil {
		n.onDeplete(id)
	}
}

// Transmit records a single-hop transmission of a payload of the given
// size from one node to a radio neighbour. It is the only place where
// traffic counters are incremented.
func (n *Network) Transmit(from, to int, kind Kind, payloadBytes int) error {
	if from == to {
		return fmt.Errorf("network: self-transmission at node %d", from)
	}
	if !n.Alive(from) {
		return fmt.Errorf("network: sender %d: %w", from, ErrNodeDown)
	}
	if !n.InRange(from, to) {
		return &LinkError{From: from, To: to, Dist: n.layout.Pos(from).Dist(n.layout.Pos(to))}
	}
	frames := uint64(1)
	if n.mtu > 0 && payloadBytes > n.mtu {
		frames = uint64((payloadBytes + n.mtu - 1) / n.mtu)
	}
	n.msgs[kind] += frames
	n.bytes[kind] += uint64(payloadBytes)
	n.nodeTx[from] += frames
	n.mTx.Add(from, frames)
	n.mMsgs.Add(int(kind-1), frames)
	n.mBytes.Add(int(kind-1), uint64(payloadBytes))

	bits := float64(payloadBytes * 8)
	d2 := n.layout.Pos(from).Dist2(n.layout.Pos(to))
	n.chargeTx(from, n.energy.Elec*bits+n.energy.Amp*bits*d2)
	if !n.Alive(to) {
		// The sender paid for a frame nobody will ever acknowledge; its
		// link layer declares the neighbour dead after the ACK timeout.
		n.countDrop(from, frames)
		if n.tracer != nil {
			n.tracer.Hop(from, to, kind.String(), payloadBytes, int(frames), true)
		}
		return fmt.Errorf("network: receiver %d: %w", to, ErrNodeDown)
	}
	if n.dropFrame(from, to) {
		// The frame left the sender's radio but never arrived: the sender
		// paid, the receiver heard nothing.
		n.countDrop(from, frames)
		if n.tracer != nil {
			n.tracer.Hop(from, to, kind.String(), payloadBytes, int(frames), true)
		}
		return ErrFrameLost
	}
	n.nodeRx[to] += frames
	n.mRx.Add(to, frames)
	n.chargeRx(to, n.energy.Elec*bits)
	if n.tracer != nil {
		n.tracer.Hop(from, to, kind.String(), payloadBytes, int(frames), false)
	}
	return nil
}

// Broadcast transmits one frame from a node to every radio neighbour at
// once (the wireless broadcast advantage): a single transmission, one
// reception per neighbour. Each reception is subject to the same lossy
// model as unicast — independent per-receiver drops — so broadcast-based
// beaconing pays the same reality tax; crashed or depleted neighbours
// hear nothing. It returns the neighbours actually reached; the slice is
// valid only until the next Broadcast call. A broadcast from a dead node
// is silent and free. Used by beaconing protocols.
func (n *Network) Broadcast(from int, kind Kind, payloadBytes int) []int {
	if !n.Alive(from) {
		return nil
	}
	nbrs := n.layout.Neighbors(from)
	frames := uint64(1)
	if n.mtu > 0 && payloadBytes > n.mtu {
		frames = uint64((payloadBytes + n.mtu - 1) / n.mtu)
	}
	n.msgs[kind] += frames
	n.bytes[kind] += uint64(payloadBytes)
	n.nodeTx[from] += frames
	n.mTx.Add(from, frames)
	n.mMsgs.Add(int(kind-1), frames)
	n.mBytes.Add(int(kind-1), uint64(payloadBytes))

	bits := float64(payloadBytes * 8)
	r := n.layout.Spec.RadioRange
	// A broadcast is amplified to full radio range.
	n.chargeTx(from, n.energy.Elec*bits+n.energy.Amp*bits*r*r)
	rx := n.energy.Elec * bits
	reached := n.reachedBuf[:0]
	lost := 0
	for _, v := range nbrs {
		if !n.Alive(v) {
			continue
		}
		if n.dropFrame(from, v) {
			lost++
			n.countDrop(from, frames)
			continue
		}
		n.nodeRx[v] += frames
		n.mRx.Add(v, frames)
		n.chargeRx(v, rx)
		reached = append(reached, v)
	}
	if n.tracer != nil {
		n.tracer.Broadcast(from, kind.String(), payloadBytes, int(frames), len(reached), lost)
	}
	n.reachedBuf = reached
	return reached
}

// NodeEnergy returns the radio energy node id has spent, in joules.
func (n *Network) NodeEnergy(id int) float64 { return n.nodeEnergy[id] }

// NodeEnergies returns a copy of the per-node energy vector.
func (n *Network) NodeEnergies() []float64 {
	out := make([]float64, len(n.nodeEnergy))
	copy(out, n.nodeEnergy)
	return out
}

// Send transmits one hop and then invokes deliver — immediately when no
// scheduler is attached, or after the hop latency on the attached
// scheduler. The transmission is accounted either way.
func (n *Network) Send(from, to int, kind Kind, payloadBytes int, deliver func()) error {
	if err := n.Transmit(from, to, kind, payloadBytes); err != nil {
		return err
	}
	if deliver == nil {
		return nil
	}
	if n.sched != nil {
		n.sched.After(n.hopLatency, deliver)
		return nil
	}
	deliver()
	return nil
}

// SendEvent is Send on the scheduler's typed-event path: one hop
// transmission, then a typed arrival event for a registered handler
// after the hop latency — no delivery closure, no per-hop allocation.
// It requires an attached scheduler (WithScheduler); protocols that
// need synchronous fallback keep using Send.
func (n *Network) SendEvent(from, to int, kind Kind, payloadBytes int, h sim.HandlerID, op uint8, a, b uint64) error {
	if n.sched == nil {
		return fmt.Errorf("network: SendEvent needs an attached scheduler")
	}
	if err := n.Transmit(from, to, kind, payloadBytes); err != nil {
		return err
	}
	n.sched.AfterEvent(n.hopLatency, h, op, a, b)
	return nil
}

// Messages returns the running transmission count for one traffic kind.
// Unlike Snapshot, it allocates nothing: per-query cost loops take the
// before/after difference of the kinds they care about directly.
func (n *Network) Messages(kind Kind) uint64 { return n.msgs[kind] }

// PayloadBytes returns the running payload-byte count for one traffic
// kind, the allocation-free companion of Messages.
func (n *Network) PayloadBytes(kind Kind) uint64 { return n.bytes[kind] }

// EnergyJ returns the total radio energy spent so far in joules.
func (n *Network) EnergyJ() float64 { return n.energyJ }

// Snapshot returns a copy of the current traffic counters.
func (n *Network) Snapshot() Counters {
	c := Counters{
		Messages: make(map[Kind]uint64, int(numKinds)),
		Bytes:    make(map[Kind]uint64, int(numKinds)),
		EnergyJ:  n.energyJ,
		Drops:    n.drops,
	}
	for _, k := range Kinds() {
		if n.msgs[k] > 0 {
			c.Messages[k] = n.msgs[k]
		}
		if n.bytes[k] > 0 {
			c.Bytes[k] = n.bytes[k]
		}
	}
	return c
}

// Diff returns the counters accumulated since an earlier snapshot.
func (n *Network) Diff(since Counters) Counters {
	cur := n.Snapshot()
	out := Counters{
		Messages: make(map[Kind]uint64, len(cur.Messages)),
		Bytes:    make(map[Kind]uint64, len(cur.Bytes)),
		EnergyJ:  cur.EnergyJ - since.EnergyJ,
		Drops:    cur.Drops - since.Drops,
	}
	for k, v := range cur.Messages {
		if d := v - since.Messages[k]; d > 0 {
			out.Messages[k] = d
		}
	}
	for k, v := range cur.Bytes {
		if d := v - since.Bytes[k]; d > 0 {
			out.Bytes[k] = d
		}
	}
	return out
}

// Reset zeroes every counter.
func (n *Network) Reset() {
	n.msgs = [numKinds]uint64{}
	n.bytes = [numKinds]uint64{}
	n.energyJ = 0
	n.drops = 0
	for i := range n.nodeTx {
		n.nodeTx[i] = 0
		n.nodeRx[i] = 0
		n.nodeDrop[i] = 0
		n.nodeEnergy[i] = 0
	}
}

// NodeLoad returns the transmission and reception counts of node id.
func (n *Network) NodeLoad(id int) (tx, rx uint64) {
	return n.nodeTx[id], n.nodeRx[id]
}

// NodeDrops returns the frames node id paid for that never arrived.
func (n *Network) NodeDrops(id int) uint64 { return n.nodeDrop[id] }

// Drops returns the total number of lost frames.
func (n *Network) Drops() uint64 { return n.drops }

// MaxNodeLoad returns the highest tx+rx total over all nodes and the node
// that bears it — the hotspot metric.
func (n *Network) MaxNodeLoad() (node int, load uint64) {
	node = -1
	for i := range n.nodeTx {
		if l := n.nodeTx[i] + n.nodeRx[i]; l > load || node < 0 {
			node, load = i, l
		}
	}
	return node, load
}
