package network

import (
	"errors"
	"testing"

	"pooldcs/internal/field"
	"pooldcs/internal/geo"
	"pooldcs/internal/rng"
	"pooldcs/internal/trace"
)

// starLayout places node 0 at the origin with k neighbours in range.
func starLayout(t *testing.T, k int) *field.Layout {
	t.Helper()
	pts := []geo.Point{geo.Pt(0, 0)}
	for i := 0; i < k; i++ {
		pts = append(pts, geo.Pt(10+float64(i), 0))
	}
	l, err := field.FromPositions(pts, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTransmitToDeadNode(t *testing.T) {
	n := New(chainLayout(t))
	n.FailNode(1)
	err := n.Transmit(0, 1, KindInsert, 16)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("transmit to dead node: err = %v, want ErrNodeDown", err)
	}
	// The sender paid: the frame counts and costs energy, but no Rx.
	c := n.Snapshot()
	if c.Messages[KindInsert] != 1 {
		t.Errorf("messages = %d, want 1 (sender pays for the dead hop)", c.Messages[KindInsert])
	}
	if _, rx := n.NodeLoad(1); rx != 0 {
		t.Errorf("dead node received %d frames", rx)
	}
	if n.NodeEnergy(1) != 0 {
		t.Errorf("dead node charged %v J", n.NodeEnergy(1))
	}
}

func TestTransmitFromDeadNode(t *testing.T) {
	n := New(chainLayout(t))
	n.FailNode(0)
	err := n.Transmit(0, 1, KindInsert, 16)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("transmit from dead node: err = %v, want ErrNodeDown", err)
	}
	// A dead sender transmits nothing: no frames, no energy.
	if c := n.Snapshot(); c.Total() != 0 {
		t.Errorf("dead sender counted %d messages", c.Total())
	}
	n.RecoverNode(0)
	if err := n.Transmit(0, 1, KindInsert, 16); err != nil {
		t.Fatalf("transmit after recovery: %v", err)
	}
}

func TestBroadcastLossyPerReceiver(t *testing.T) {
	const k, trials = 8, 400
	l := starLayout(t, k)
	tr := trace.New(nil)
	n := New(l, WithLossRate(0.5, rng.New(42)), WithTracer(tr))
	total := 0
	for i := 0; i < trials; i++ {
		total += len(n.Broadcast(0, KindControl, 8))
	}
	// Independent 50% drops: the mean reach must be near k/2, and with 400
	// trials a fully-correlated model (all-or-nothing) would essentially
	// never land in this window per-receiver variance does.
	mean := float64(total) / trials
	if mean < 0.4*k || mean > 0.6*k {
		t.Errorf("mean broadcast reach = %.2f of %d, want ≈ %d", mean, k, k/2)
	}
	// Trace accounting: reached + lost must equal k on every record.
	for _, ev := range tr.Events() {
		if ev.Type != trace.TypeBroadcast {
			continue
		}
		if ev.N+ev.NLost != k {
			t.Fatalf("broadcast record: reached %d + lost %d != %d neighbours", ev.N, ev.NLost, k)
		}
	}
}

func TestBroadcastSkipsDeadReceivers(t *testing.T) {
	l := starLayout(t, 4)
	n := New(l)
	n.FailNode(2)
	reached := n.Broadcast(0, KindControl, 8)
	if len(reached) != 3 {
		t.Fatalf("reached = %v, want 3 alive neighbours", reached)
	}
	for _, v := range reached {
		if v == 2 {
			t.Fatal("dead node 2 reported reached")
		}
	}
	if n.NodeEnergy(2) != 0 {
		t.Errorf("dead node charged %v J for a reception", n.NodeEnergy(2))
	}
	// A dead sender broadcasts nothing.
	n.FailNode(0)
	if got := n.Broadcast(0, KindControl, 8); got != nil {
		t.Errorf("dead sender reached %v", got)
	}
}

func TestRegionLossBurst(t *testing.T) {
	n := New(chainLayout(t))
	// A certain-loss burst over node 1: the 0→1 hop always drops.
	cancel := n.AddRegionLoss(geo.RectFromCorners(geo.Pt(25, -5), geo.Pt(35, 5)), 1.0, rng.New(1))
	if err := n.Transmit(0, 1, KindQuery, 8); !errors.Is(err, ErrFrameLost) {
		t.Fatalf("transmit into burst region: err = %v, want ErrFrameLost", err)
	}
	// Both endpoints outside the region: unaffected.
	if err := n.Transmit(1, 2, KindQuery, 8); err != nil {
		// Node 1 at (30,0) is inside the region, so this hop is also hit.
		if !errors.Is(err, ErrFrameLost) {
			t.Fatalf("transmit from burst region: err = %v", err)
		}
	}
	cancel()
	if err := n.Transmit(0, 1, KindQuery, 8); err != nil {
		t.Fatalf("transmit after burst ended: %v", err)
	}
}

func TestRegionLossCancelIsIdempotent(t *testing.T) {
	n := New(chainLayout(t))
	c1 := n.AddRegionLoss(geo.RectFromCorners(geo.Pt(0, 0), geo.Pt(1, 1)), 1.0, rng.New(1))
	c2 := n.AddRegionLoss(geo.RectFromCorners(geo.Pt(2, 2), geo.Pt(3, 3)), 1.0, rng.New(2))
	c1()
	c1() // double-cancel must not remove the other burst
	if len(n.bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(n.bursts))
	}
	c2()
	if len(n.bursts) != 0 {
		t.Fatalf("bursts = %d, want 0", len(n.bursts))
	}
}

func TestEnergyBudgetDepletion(t *testing.T) {
	m := DefaultEnergyModel()
	// Budget two transmissions' worth of sender energy for the 0→1 hop.
	bits := float64(16 * 8)
	d2 := 30.0 * 30.0
	perTx := m.Elec*bits + m.Amp*bits*d2
	m.Budget = 2.5 * perTx

	n := New(chainLayout(t), WithEnergyModel(m))
	var depleted []int
	n.OnDepleted(func(id int) { depleted = append(depleted, id) })

	if err := n.Transmit(0, 1, KindInsert, 16); err != nil {
		t.Fatal(err)
	}
	if err := n.Transmit(0, 1, KindInsert, 16); err != nil {
		t.Fatal(err)
	}
	if n.Depleted(0) {
		t.Fatal("node 0 depleted below budget")
	}
	// Third transmission crosses the budget mid-call.
	err := n.Transmit(0, 1, KindInsert, 16)
	if err != nil {
		t.Fatalf("depleting transmission itself should succeed, got %v", err)
	}
	if !n.Depleted(0) || n.Alive(0) {
		t.Fatal("node 0 should be depleted")
	}
	if len(depleted) != 1 || depleted[0] != 0 {
		t.Fatalf("depletion callbacks = %v, want [0]", depleted)
	}
	// Depletion is permanent: recovery does not refill the battery.
	n.RecoverNode(0)
	if n.Alive(0) {
		t.Fatal("RecoverNode revived a depleted node")
	}
	if err := n.Transmit(0, 1, KindInsert, 16); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("transmit from depleted node: err = %v, want ErrNodeDown", err)
	}
	// The watcher fires once per node, not once per charge.
	if len(depleted) != 1 {
		t.Fatalf("depletion callbacks = %v, want exactly one", depleted)
	}
}

func TestEnergyBudgetValidate(t *testing.T) {
	m := DefaultEnergyModel()
	m.Budget = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative budget passed Validate")
	}
}
