package dim

import (
	"fmt"

	"pooldcs/internal/dcs"
	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/geo"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/metrics"
	"pooldcs/internal/network"
	"pooldcs/internal/trace"
)

// Zone is one leaf of DIM's spatial subdivision.
type Zone struct {
	// Code is the zone's binary code.
	Code Code
	// Rect is the geographic region the zone covers.
	Rect geo.Rect
	// Owner is the node responsible for the zone: the node inside it, or —
	// for node-free zones — the node nearest the zone centre (DIM's backup
	// ownership of empty zones).
	Owner int
}

// treeNode is a node of the zone code tree. Leaves reference a zone.
type treeNode struct {
	zone     int // index into System.zones, -1 for internal nodes
	children [2]*treeNode
}

// Dissemination selects how a query reaches its relevant zones.
type Dissemination int

// Dissemination strategies.
const (
	// ChainDissemination forwards the query through the relevant zones in
	// code order; consecutive zones are spatially adjacent under the k-d
	// subdivision, so the chain's links are short. This is the default
	// and the cheaper model for DIM.
	ChainDissemination Dissemination = iota + 1
	// SplitDissemination models the DIM paper's recursive query
	// splitting: the query packet routes toward the nearest relevant
	// subregion and forks a subquery for the sibling region at each
	// subtree boundary it enters.
	SplitDissemination
)

// String implements fmt.Stringer.
func (d Dissemination) String() string {
	switch d {
	case ChainDissemination:
		return "chain"
	case SplitDissemination:
		return "split"
	default:
		return fmt.Sprintf("Dissemination(%d)", int(d))
	}
}

// Option configures New.
type Option interface {
	apply(*System)
}

type optionFunc func(*System)

func (f optionFunc) apply(s *System) { f(s) }

// WithDissemination selects the query dissemination strategy.
func WithDissemination(d Dissemination) Option {
	return optionFunc(func(s *System) { s.dissemination = d })
}

// WithTracer attaches a structured-event tracer so DIM runs produce
// traces comparable to Pool's: inserts and queries become spans with
// placement, fan-out, and zone-resolve events. Pair with
// network.WithTracer on the same tracer for per-hop records.
func WithTracer(t *trace.Tracer) Option {
	return optionFunc(func(s *System) { s.tracer = t })
}

// WithARQBudget overrides the per-hop link-layer retransmission budget
// for every routed unicast the system issues (default
// dcs.DefaultMaxRetransmissions).
func WithARQBudget(n int) Option {
	return optionFunc(func(s *System) { s.arq = dcs.TxOptions{MaxRetransmissions: n} })
}

// WithMetrics registers DIM's live metrics on reg: insert/query
// counters, the per-query zone fan-out histogram, and a function-backed
// per-node stored-events gauge. A nil registry attaches nothing.
func WithMetrics(reg *metrics.Registry) Option {
	return optionFunc(func(s *System) { s.reg = reg })
}

// System is a DIM instance over one network.
type System struct {
	net    *network.Network
	router *gpsr.Router
	dims   int

	zones    []Zone
	root     *treeNode
	maxDepth int

	dissemination Dissemination

	// tracer records structured events; nil disables tracing.
	tracer *trace.Tracer

	// arq is the per-hop retransmission budget for routed unicasts; its
	// PathBuf points at pathBuf so route paths reuse one backing array.
	arq dcs.TxOptions
	// pathBuf, zoneBuf, visitBuf, and answered are query/insert hot-path
	// scratch, reused across operations. A System is single-goroutine.
	pathBuf  []int
	zoneBuf  []Zone
	visitBuf []zoneVisit
	answered map[int]bool

	// storage holds the events stored at each node.
	storage [][]event.Event

	// dead marks failed nodes (faults.go).
	dead []bool

	// Metric handles (nil when no registry is attached).
	reg      *metrics.Registry
	mInserts *metrics.Counter
	mQueries *metrics.Counter
	mRetries *metrics.Counter
	mFanout  *metrics.Histogram
}

var _ dcs.System = (*System)(nil)
var _ dcs.StorageReporter = (*System)(nil)

// New builds the DIM zone structure over the network's deployment for
// events of the given dimensionality.
func New(net *network.Network, router *gpsr.Router, dims int, opts ...Option) (*System, error) {
	if dims < 1 {
		return nil, fmt.Errorf("dim: dimensionality must be ≥ 1, got %d", dims)
	}
	s := &System{
		net:           net,
		router:        router,
		dims:          dims,
		dissemination: ChainDissemination,
		storage:       make([][]event.Event, net.Layout().N()),
		dead:          make([]bool, net.Layout().N()),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.arq.PathBuf = &s.pathBuf
	s.buildZones()
	if s.reg != nil {
		s.enableMetrics(s.reg)
	}
	return s, nil
}

// enableMetrics registers the system's metric families (WithMetrics).
func (s *System) enableMetrics(reg *metrics.Registry) {
	n := s.net.Layout().N()
	s.mInserts = reg.Counter("dim_inserts_total", "events stored through DIM")
	s.mQueries = reg.Counter("dim_queries_total", "range queries resolved by DIM")
	s.mRetries = reg.Counter("dim_query_retries_total", "extra unicasts spent by the query failure policy")
	s.mFanout = reg.Histogram("dim_query_fanout_zones", "relevant zones addressed per query")
	reg.NodeGaugeFunc("dim_stored_events", "events held per node", n,
		func(i int) float64 { return float64(len(s.storage[i])) })
	reg.GaugeFunc("dim_zones", "leaves of the zone subdivision",
		func() float64 { return float64(len(s.zones)) })
}

// unicast routes a payload between two nodes, applying the system's ARQ
// retransmission budget. Every routed exchange in the package goes
// through here.
func (s *System) unicast(from, to int, kind network.Kind, payloadBytes int) (int, error) {
	return dcs.UnicastOpts(s.net, s.router, from, to, kind, payloadBytes, s.arq)
}

// Name implements dcs.System.
func (s *System) Name() string { return "DIM" }

// Dims returns the event dimensionality the index was built for.
func (s *System) Dims() int { return s.dims }

// Zones returns the zone table, sorted by code (in-order tree traversal),
// reproducing the paper's Figure 1(b) layout. The slice is owned by the
// system.
func (s *System) Zones() []Zone { return s.zones }

// buildZones recursively bisects the field until every zone holds at most
// one node, then assigns node-free zones to the node nearest their centre.
func (s *System) buildZones() {
	l := s.net.Layout()
	all := make([]int, l.N())
	for i := range all {
		all[i] = i
	}
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(l.Side, l.Side)}
	s.root = s.split(Code{}, bounds, all, l)
	// The DFS in split appends leaves child-0-first, so zones are already
	// in code order — the spatially coherent traversal order Query uses.
	for _, z := range s.zones {
		if z.Code.Len() > s.maxDepth {
			s.maxDepth = z.Code.Len()
		}
	}
}

func (s *System) split(code Code, rect geo.Rect, nodes []int, l *field.Layout) *treeNode {
	if len(nodes) <= 1 || code.Len() >= maxCodeBits {
		owner := -1
		if len(nodes) >= 1 {
			owner = nodes[0]
		} else {
			owner = l.Nearest(rect.Center())
		}
		s.zones = append(s.zones, Zone{Code: code, Rect: rect, Owner: owner})
		return &treeNode{zone: len(s.zones) - 1}
	}
	var lo, hi geo.Rect
	if code.Len()%2 == 0 {
		lo, hi = rect.SplitVertical()
	} else {
		lo, hi = rect.SplitHorizontal()
	}
	var loNodes, hiNodes []int
	for _, n := range nodes {
		// Half-open rectangles tile the plane, so each node lands in
		// exactly one child.
		if lo.Contains(l.Pos(n)) {
			loNodes = append(loNodes, n)
		} else {
			hiNodes = append(hiNodes, n)
		}
	}
	t := &treeNode{zone: -1}
	t.children[0] = s.split(code.Append(0), lo, loNodes, l)
	t.children[1] = s.split(code.Append(1), hi, hiNodes, l)
	return t
}

// ZoneOf returns the zone an event's values map to under the
// locality-preserving hash.
func (s *System) ZoneOf(values []float64) Zone {
	code := EventCode(values, s.maxDepth)
	t := s.root
	depth := 0
	for t.zone < 0 {
		t = t.children[code.Bit(depth)]
		depth++
	}
	return s.zones[t.zone]
}

// Insert implements dcs.System: the event is routed toward its zone and
// stored at the zone's owner.
func (s *System) Insert(origin int, e event.Event) error {
	if err := e.Validate(); err != nil {
		return fmt.Errorf("dim: %w", err)
	}
	if e.Dims() != s.dims {
		return fmt.Errorf("dim: event has %d dims, index built for %d", e.Dims(), s.dims)
	}
	z := s.ZoneOf(e.Values)
	payload := dcs.EventBytes(s.dims)
	if s.tracer.Enabled() {
		s.tracer.Begin(trace.OpInsert, origin, "")
		defer s.tracer.End()
		s.tracer.Record(trace.TypePlace, z.Owner, 0, fmt.Sprintf("zone %v", z.Code))
	}
	// The event is routed geographically toward the zone and consumed by
	// the zone's owner on arrival (a node inside its zone recognizes the
	// code and keeps the event; no home-node probe is needed).
	if _, err := s.unicast(origin, z.Owner, network.KindInsert, payload); err != nil {
		return fmt.Errorf("dim: insert: %w", err)
	}
	s.storage[z.Owner] = append(s.storage[z.Owner], e)
	s.mInserts.Inc()
	return nil
}

// RelevantZones returns the zones whose value regions overlap the
// (rewritten) query — the zones DIM must visit.
func (s *System) RelevantZones(q event.Query) []Zone {
	return s.appendRelevantZones(nil, q.Rewrite())
}

// appendRelevantZones appends the zones overlapping the
// already-rewritten query to dst and returns the extended slice — the
// allocation-free form of RelevantZones for per-query hot paths. The
// descent's region scratch stays on the stack for realistic k.
func (s *System) appendRelevantZones(dst []Zone, rq event.Query) []Zone {
	var regionArr [8]geo.Interval
	var region []geo.Interval
	if s.dims <= len(regionArr) {
		region = regionArr[:s.dims]
	} else {
		region = make([]geo.Interval, s.dims)
	}
	for j := range region {
		region[j] = geo.Iv(0, 1)
	}
	s.collect(s.root, 0, region, rq, &dst)
	return dst
}

func (s *System) collect(t *treeNode, depth int, region []geo.Interval, q event.Query, out *[]Zone) {
	if t.zone >= 0 {
		*out = append(*out, s.zones[t.zone])
		return
	}
	j := depth % s.dims
	mid := (region[j].Lo + region[j].Hi) / 2
	r := q.Ranges[j]
	// Child 0 covers values in [lo, mid); child 1 covers [mid, hi).
	if r.L < mid {
		saved := region[j]
		region[j] = geo.Iv(saved.Lo, mid)
		s.collect(t.children[0], depth+1, region, q, out)
		region[j] = saved
	}
	if r.U >= mid {
		saved := region[j]
		region[j] = geo.Iv(mid, saved.Hi)
		s.collect(t.children[1], depth+1, region, q, out)
		region[j] = saved
	}
}

// Query implements dcs.System: the query is disseminated to every
// relevant zone (strategy per WithDissemination) and every owner holding
// qualifying events replies to the sink. Under node failures the query
// degrades gracefully — zones that stay unreachable after one retry are
// skipped; use QueryWithReport to learn how complete the answer is.
func (s *System) Query(sink int, q event.Query) ([]event.Event, error) {
	results, _, err := s.QueryWithReport(sink, q)
	return results, err
}

// zoneVisit is one relevant zone the dissemination reached, in visit
// order; ok is cleared when the owner's reply is later lost.
type zoneVisit struct {
	zone Zone
	ok   bool
}

// degradable reports whether a unicast failure is one graceful
// degradation absorbs; the shared predicate lives in dcs so pool, dim,
// and ght stay in lockstep.
func degradable(err error) bool { return dcs.IsDegradable(err) }

// QueryWithReport is Query plus a Completeness report over the relevant
// zones: how many the dissemination addressed, how many were served
// (visited and, when they held matches, replied), and which were left
// unreached. An incomplete answer is not an error.
func (s *System) QueryWithReport(sink int, q event.Query) ([]event.Event, dcs.Completeness, error) {
	var comp dcs.Completeness
	if err := q.Validate(); err != nil {
		return nil, comp, fmt.Errorf("dim: %w", err)
	}
	if q.Dims() != s.dims {
		return nil, comp, fmt.Errorf("dim: query has %d dims, index built for %d", q.Dims(), s.dims)
	}
	rq := q.Rewrite()
	qBytes := dcs.QueryBytes(s.dims)

	if s.tracer.Enabled() {
		s.tracer.Begin(trace.OpQuery, sink, "")
		defer s.tracer.End()
	}
	var visits []zoneVisit
	var err error
	switch s.dissemination {
	case SplitDissemination:
		visits, err = s.disseminateSplit(sink, rq, qBytes, &comp)
	default:
		visits, err = s.disseminateChain(sink, rq, qBytes, &comp)
	}
	if err != nil {
		return nil, comp, err
	}
	if s.tracer.Enabled() {
		s.tracer.Record(trace.TypeFanout, sink, len(visits), s.dissemination.String())
	}

	var results []event.Event
	// A node may own several relevant zones (backup ownership of empty
	// zones); its storage is scanned and answered only once. The scratch
	// map is reused across queries.
	if s.answered == nil {
		s.answered = make(map[int]bool, len(visits))
	} else {
		clear(s.answered)
	}
	answered := s.answered
	for _, v := range visits {
		owner := v.zone.Owner
		if answered[owner] {
			continue
		}
		answered[owner] = true
		matches := rq.Filter(s.storage[owner])
		if s.tracer.Enabled() {
			s.tracer.Record(trace.TypeResolve, owner, len(matches), "")
		}
		if len(matches) == 0 {
			continue
		}
		replyBytes := dcs.ReplyBytes(s.dims, len(matches))
		if _, err := s.unicast(owner, sink, network.KindReply, replyBytes); err != nil {
			if !degradable(err) {
				return nil, comp, fmt.Errorf("dim: reply: %w", err)
			}
			comp.Retries++
			if _, err := s.unicast(owner, sink, network.KindReply, replyBytes); err != nil {
				if !degradable(err) {
					return nil, comp, fmt.Errorf("dim: reply: %w", err)
				}
				// The reply never made it: every zone this owner serves
				// goes unserved.
				for i := range visits {
					if visits[i].zone.Owner == owner {
						visits[i].ok = false
					}
				}
				continue
			}
		}
		results = append(results, matches...)
	}
	for _, v := range visits {
		if v.ok {
			comp.CellsReached++
		} else {
			comp.Unreached = append(comp.Unreached, fmt.Sprintf("zone %v", v.zone.Code))
		}
	}
	s.mQueries.Inc()
	s.mFanout.Observe(int64(comp.CellsTotal))
	s.mRetries.Add(uint64(comp.Retries))
	return results, comp, nil
}

// disseminateChain forwards the query through the relevant zones in code
// order, returning the visited zones. A zone whose owner stays
// unreachable after one retry is recorded in comp and skipped; the chain
// continues from the previous carrier.
func (s *System) disseminateChain(sink int, rq event.Query, qBytes int, comp *dcs.Completeness) ([]zoneVisit, error) {
	zones := s.appendRelevantZones(s.zoneBuf[:0], rq)
	s.zoneBuf = zones
	comp.CellsTotal += len(zones)
	visits := s.visitBuf[:0]
	cur := sink
	for _, z := range zones {
		if z.Owner != cur {
			if _, err := s.unicast(cur, z.Owner, network.KindQuery, qBytes); err != nil {
				if !degradable(err) {
					return nil, fmt.Errorf("dim: query forward: %w", err)
				}
				// One retry after a backoff, then give the zone up.
				comp.Retries++
				if _, err := s.unicast(cur, z.Owner, network.KindQuery, qBytes); err != nil {
					if !degradable(err) {
						return nil, fmt.Errorf("dim: query forward: %w", err)
					}
					comp.Unreached = append(comp.Unreached, fmt.Sprintf("zone %v", z.Code))
					continue
				}
			}
			cur = z.Owner
		}
		visits = append(visits, zoneVisit{zone: z, ok: true})
	}
	s.visitBuf = visits
	return visits, nil
}

// disseminateSplit walks the zone tree: the packet routes from its
// carrier toward the nearest relevant child region; on entering a region
// whose sibling is also relevant, the entry node forks a subquery for the
// sibling. Returns the visited zones; unreachable leaves are recorded in
// comp and skipped (their sibling subqueries depart from the carrier).
func (s *System) disseminateSplit(sink int, rq event.Query, qBytes int, comp *dcs.Completeness) ([]zoneVisit, error) {
	region := make([]geo.Interval, s.dims)
	for j := range region {
		region[j] = geo.Iv(0, 1)
	}
	var visits []zoneVisit
	_, err := s.splitWalk(sink, s.root, 0, region, rq, qBytes, &visits, comp)
	if err != nil {
		return nil, err
	}
	return visits, nil
}

// splitWalk recursively disseminates the query under t, returning the
// entry node (the first owner reached in this subtree), or -1 when no
// zone under t is relevant or its owner stayed unreachable.
func (s *System) splitWalk(carrier int, t *treeNode, depth int, region []geo.Interval, rq event.Query, qBytes int, visits *[]zoneVisit, comp *dcs.Completeness) (int, error) {
	if t.zone >= 0 {
		z := s.zones[t.zone]
		comp.CellsTotal++
		if z.Owner != carrier {
			if _, err := s.unicast(carrier, z.Owner, network.KindQuery, qBytes); err != nil {
				if !degradable(err) {
					return -1, fmt.Errorf("dim: split forward: %w", err)
				}
				// One retry, then give the zone up; the sibling subquery
				// departs from the carrier instead.
				comp.Retries++
				if _, err := s.unicast(carrier, z.Owner, network.KindQuery, qBytes); err != nil {
					if !degradable(err) {
						return -1, fmt.Errorf("dim: split forward: %w", err)
					}
					comp.Unreached = append(comp.Unreached, fmt.Sprintf("zone %v", z.Code))
					return -1, nil
				}
			}
		}
		*visits = append(*visits, zoneVisit{zone: z, ok: true})
		return z.Owner, nil
	}

	j := depth % s.dims
	mid := (region[j].Lo + region[j].Hi) / 2
	r := rq.Ranges[j]
	type child struct {
		node   *treeNode
		iv     geo.Interval
		center geo.Point
	}
	var children []child
	if r.L < mid {
		children = append(children, child{node: t.children[0], iv: geo.Iv(region[j].Lo, mid)})
	}
	if r.U >= mid {
		children = append(children, child{node: t.children[1], iv: geo.Iv(mid, region[j].Hi)})
	}
	if len(children) == 0 {
		return -1, nil
	}
	for i := range children {
		children[i].center = s.subtreeCenter(children[i].node)
	}
	// Enter the nearer region first; the sibling's subquery departs from
	// that region's entry node.
	if len(children) == 2 {
		here := s.net.Layout().Pos(carrier)
		if here.Dist2(children[1].center) < here.Dist2(children[0].center) {
			children[0], children[1] = children[1], children[0]
		}
	}
	entry := -1
	cur := carrier
	for _, c := range children {
		saved := region[j]
		region[j] = c.iv
		e, err := s.splitWalk(cur, c.node, depth+1, region, rq, qBytes, visits, comp)
		region[j] = saved
		if err != nil {
			return -1, err
		}
		if e >= 0 && entry < 0 {
			entry = e
			cur = e
		}
	}
	return entry, nil
}

// subtreeCenter returns the geographic centre of the region a subtree
// covers (the centre of its leftmost zone's enclosing rect level is not
// tracked, so use the first zone's rect as an anchor).
func (s *System) subtreeCenter(t *treeNode) geo.Point {
	for t.zone < 0 {
		t = t.children[0]
	}
	return s.zones[t.zone].Rect.Center()
}

// StorageLoad implements dcs.StorageReporter.
func (s *System) StorageLoad() []int {
	out := make([]int, len(s.storage))
	for i, evs := range s.storage {
		out[i] = len(evs)
	}
	return out
}
