package dim

import (
	"fmt"
	"math"

	"pooldcs/internal/geo"
	"pooldcs/internal/trace"
)

// DIM stores each event in exactly one zone with no replica, so a node
// failure loses the events it held — the paper's zone structure has no
// mirroring to recover from. What survives is the index: every zone the
// failed node owned (its own zone plus backup ownership of empty zones)
// is re-homed to the closest surviving node, so later inserts and
// queries route around the corpse instead of erroring.

// Failed reports whether a node has been marked failed.
func (s *System) Failed(id int) bool { return s.dead[id] }

// FailNode marks a node as failed: its stored events are lost (DIM keeps
// a single copy per zone) and every zone it owned is re-homed to the
// closest surviving node. Failing an already-failed node is a no-op.
func (s *System) FailNode(id int) error {
	if id < 0 || id >= len(s.dead) {
		return fmt.Errorf("dim: node %d out of range", id)
	}
	if s.dead[id] {
		return nil
	}
	s.dead[id] = true
	if s.tracer.Enabled() {
		s.tracer.Begin(trace.OpFail, id, "")
		defer s.tracer.End()
		s.tracer.Record(trace.TypeFault, id, len(s.storage[id]), "")
	}
	// The node's events die with it.
	s.storage[id] = nil

	// Re-home the zones it owned. ZoneOf reads s.zones through the tree,
	// so updating Owner redirects future inserts too.
	for i := range s.zones {
		if s.zones[i].Owner != id {
			continue
		}
		next := s.nearestAlive(s.zones[i].Rect.Center())
		if next < 0 {
			return fmt.Errorf("dim: no surviving node for zone %v", s.zones[i].Code)
		}
		s.zones[i].Owner = next
	}
	return nil
}

// RecoverNode brings a previously failed node back: it can store and
// answer again, but zones re-homed away from it are not reclaimed and
// its pre-failure storage is gone — a rebooted mote comes back empty.
// Recovering a node that never failed is a no-op.
func (s *System) RecoverNode(id int) {
	if id < 0 || id >= len(s.dead) || !s.dead[id] {
		return
	}
	s.dead[id] = false
}

// nearestAlive returns the alive node closest to p, or -1 when every
// node is dead.
func (s *System) nearestAlive(p geo.Point) int {
	layout := s.net.Layout()
	best, bestD2 := -1, math.Inf(1)
	for i := 0; i < layout.N(); i++ {
		if s.dead[i] {
			continue
		}
		if d2 := layout.Pos(i).Dist2(p); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}
