// Package dim reimplements DIM — the Distributed Index for
// Multi-dimensional data (Li, Kim, Govindan & Hong, SenSys 2003) — which
// the paper uses as its baseline: the only prior DCS scheme supporting
// multi-dimensional range queries (§1, §5).
//
// DIM embeds a k-d tree in the sensor field. The field is recursively
// bisected (vertically, then horizontally, alternating) until every zone
// contains at most one node; each zone carries a binary code recording the
// split decisions. The same code, read as bisections of the k-dimensional
// value space (attribute i mod k at depth i), assigns every event a zone —
// the locality-preserving geographic hash of [11]. Range queries descend
// the code tree and visit every zone whose value region overlaps the
// query.
package dim

import (
	"fmt"
	"strings"

	"pooldcs/internal/geo"
)

// maxCodeBits bounds zone-code length. 64 bits of splits is far beyond any
// realistic deployment depth (2^64 zones).
const maxCodeBits = 64

// Code is a binary zone code of up to 64 bits: the sequence of split
// decisions from the root. Codes are comparable and usable as map keys.
type Code struct {
	bits uint64
	n    int
}

// ParseCode builds a Code from a string of '0' and '1' runes, e.g. "110"
// for the paper's Figure 1 zones.
func ParseCode(s string) (Code, error) {
	var c Code
	for _, r := range s {
		switch r {
		case '0':
			c = c.Append(0)
		case '1':
			c = c.Append(1)
		default:
			return Code{}, fmt.Errorf("dim: invalid code character %q in %q", r, s)
		}
	}
	return c, nil
}

// Len returns the number of bits in the code.
func (c Code) Len() int { return c.n }

// Bit returns bit i (0 = first split).
func (c Code) Bit(i int) int {
	return int(c.bits>>uint(c.n-1-i)) & 1
}

// Append returns the code extended by one bit.
func (c Code) Append(bit int) Code {
	if c.n >= maxCodeBits {
		panic("dim: code overflow")
	}
	return Code{bits: c.bits<<1 | uint64(bit&1), n: c.n + 1}
}

// IsPrefixOf reports whether c is a prefix of other.
func (c Code) IsPrefixOf(other Code) bool {
	if c.n > other.n {
		return false
	}
	return other.bits>>uint(other.n-c.n) == c.bits
}

// String implements fmt.Stringer.
func (c Code) String() string {
	if c.n == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		b.WriteByte(byte('0' + c.Bit(i)))
	}
	return b.String()
}

// GeoRect returns the geographic rectangle a code denotes inside the given
// field: bit i bisects the x axis when i is even (0 = left) and the y axis
// when i is odd (0 = bottom), matching the zone construction.
func (c Code) GeoRect(fieldSide float64) geo.Rect {
	r := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(fieldSide, fieldSide)}
	for i := 0; i < c.n; i++ {
		if i%2 == 0 {
			left, right := r.SplitVertical()
			if c.Bit(i) == 0 {
				r = left
			} else {
				r = right
			}
		} else {
			bottom, top := r.SplitHorizontal()
			if c.Bit(i) == 0 {
				r = bottom
			} else {
				r = top
			}
		}
	}
	return r
}

// ValueRegion returns the k-dimensional value region a code denotes: bit i
// bisects attribute (i mod k), with 0 selecting the lower half. Regions
// are half-open on the upper side except at 1.0, mirroring the normalized
// attribute domain. This reproduces the paper's Figure 1(b) table.
func (c Code) ValueRegion(k int) []geo.Interval {
	region := make([]geo.Interval, k)
	for j := range region {
		region[j] = geo.Iv(0, 1)
	}
	for i := 0; i < c.n; i++ {
		j := i % k
		mid := (region[j].Lo + region[j].Hi) / 2
		if c.Bit(i) == 0 {
			region[j].Hi = mid
		} else {
			region[j].Lo = mid
		}
	}
	return region
}

// EventCode returns the depth-bit code of a value vector: the zone code an
// event maps to when the tree is fully split to that depth. values must be
// normalized to [0, 1).
func EventCode(values []float64, depth int) Code {
	k := len(values)
	// Per-insert hot path: keep the bisection bounds on the stack for
	// realistic dimensionalities instead of allocating two slices.
	var loArr, hiArr [8]float64
	var lo, hi []float64
	if k <= len(loArr) {
		lo, hi = loArr[:k], hiArr[:k]
	} else {
		lo, hi = make([]float64, k), make([]float64, k)
	}
	for j := range hi {
		lo[j] = 0
		hi[j] = 1
	}
	var c Code
	for i := 0; i < depth; i++ {
		j := i % k
		mid := (lo[j] + hi[j]) / 2
		if values[j] < mid {
			c = c.Append(0)
			hi[j] = mid
		} else {
			c = c.Append(1)
			lo[j] = mid
		}
	}
	return c
}
