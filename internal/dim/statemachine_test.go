package dim

import (
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
)

// TestDIMAgainstOracle drives DIM with random inserts and queries (both
// dissemination modes, several dimensionalities) and compares every
// result set against a flat in-memory oracle.
func TestDIMAgainstOracle(t *testing.T) {
	cases := []struct {
		name string
		dims int
		mode Dissemination
	}{
		{"k2-chain", 2, ChainDissemination},
		{"k3-chain", 3, ChainDissemination},
		{"k3-split", 3, SplitDissemination},
		{"k4-split", 4, SplitDissemination},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			l, err := field.Generate(field.DefaultSpec(300), rng.New(700))
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(network.New(l), gpsr.New(l), tc.dims, WithDissemination(tc.mode))
			if err != nil {
				t.Fatal(err)
			}

			src := rng.New(701)
			oracle := make(map[uint64]event.Event)
			var nextSeq uint64
			for op := 0; op < 500; op++ {
				if src.Bool(0.6) { // insert
					nextSeq++
					vals := make([]float64, tc.dims)
					for i := range vals {
						vals[i] = src.Float64()
					}
					e := event.Event{Values: vals, Seq: nextSeq}
					if err := s.Insert(src.Intn(300), e); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					oracle[e.Seq] = e
					continue
				}
				// query
				ranges := make([]event.Range, tc.dims)
				for i := range ranges {
					if src.Bool(0.3) {
						ranges[i] = event.Unspecified()
						continue
					}
					lo := src.Float64() * 0.8
					ranges[i] = event.Span(lo, lo+src.Float64()*(1-lo))
				}
				q := event.NewQuery(ranges...)
				if q.Unspecified() == tc.dims {
					q.Ranges[0] = event.Span(0, 1)
				}
				got, err := s.Query(src.Intn(300), q)
				if err != nil {
					t.Fatalf("op %d query %v: %v", op, q, err)
				}
				rq := q.Rewrite()
				want := make(map[uint64]bool)
				for seq, e := range oracle {
					if rq.Matches(e) {
						want[seq] = true
					}
				}
				if len(got) != len(want) {
					t.Fatalf("op %d query %v: got %d, oracle %d", op, q, len(got), len(want))
				}
				for _, e := range got {
					if !want[e.Seq] {
						t.Fatalf("op %d query %v: spurious event %d", op, q, e.Seq)
					}
				}
			}
		})
	}
}
