package dim

import (
	"sort"
	"strings"
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/geo"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
)

// figure1Layout recreates a deployment whose k-d subdivision yields exactly
// the zone codes of the paper's Figure 1: {00, 010, 011, 100, 101, 110,
// 1110, 1111}. One node sits at the centre of each zone.
func figure1Layout(t testing.TB) *field.Layout {
	t.Helper()
	pts := []geo.Point{
		geo.Pt(25, 25),     // 00
		geo.Pt(12.5, 75),   // 010
		geo.Pt(37.5, 75),   // 011
		geo.Pt(62.5, 25),   // 100
		geo.Pt(87.5, 25),   // 101
		geo.Pt(62.5, 75),   // 110
		geo.Pt(87.5, 62.5), // 1110
		geo.Pt(87.5, 87.5), // 1111
	}
	l, err := field.FromPositions(pts, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Connected() {
		t.Fatal("figure-1 layout must be connected")
	}
	return l
}

func figure1System(t testing.TB) (*System, *network.Network) {
	t.Helper()
	l := figure1Layout(t)
	net := network.New(l)
	s, err := New(net, gpsr.New(l), 3)
	if err != nil {
		t.Fatal(err)
	}
	return s, net
}

func zoneCodes(zones []Zone) []string {
	out := make([]string, len(zones))
	for i, z := range zones {
		out[i] = z.Code.String()
	}
	return out
}

// TestZoneTableFigure1 verifies that the zone construction over the
// Figure 1 deployment produces the paper's zone codes, each owned by the
// node inside it.
func TestZoneTableFigure1(t *testing.T) {
	s, _ := figure1System(t)
	got := zoneCodes(s.Zones())
	want := []string{"00", "010", "011", "100", "101", "110", "1110", "1111"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("zones = %v, want %v", got, want)
	}
	wantOwner := map[string]int{
		"00": 0, "010": 1, "011": 2, "100": 3, "101": 4, "110": 5, "1110": 6, "1111": 7,
	}
	for _, z := range s.Zones() {
		if z.Owner != wantOwner[z.Code.String()] {
			t.Errorf("zone %v owner = %d, want %d", z.Code, z.Owner, wantOwner[z.Code.String()])
		}
	}
}

func TestZonesTileField(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(l)
	s, err := New(net, gpsr.New(l), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every random point must fall in exactly one zone rect (half-open).
	src := rng.New(31)
	for trial := 0; trial < 500; trial++ {
		p := geo.Pt(src.Uniform(0, l.Side), src.Uniform(0, l.Side))
		count := 0
		for _, z := range s.Zones() {
			if z.Rect.Contains(p) {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("point %v lies in %d zones", p, count)
		}
	}
	// Every node owns the zone containing it.
	for _, z := range s.Zones() {
		if z.Owner < 0 {
			t.Fatalf("zone %v unowned", z.Code)
		}
	}
	for i := 0; i < l.N(); i++ {
		found := false
		for _, z := range s.Zones() {
			if z.Rect.Contains(l.Pos(i)) {
				if z.Owner != i {
					t.Fatalf("node %d lies in zone %v owned by %d", i, z.Code, z.Owner)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d in no zone", i)
		}
	}
}

func TestZoneCountGrowsWithNetwork(t *testing.T) {
	var prev int
	for _, n := range []int{100, 300, 600} {
		l, err := field.Generate(field.DefaultSpec(n), rng.New(32))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(network.New(l), gpsr.New(l), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Zones()) < n {
			t.Errorf("n=%d: only %d zones; every node must be separated", n, len(s.Zones()))
		}
		if len(s.Zones()) <= prev {
			t.Errorf("zone count did not grow: %d after %d", len(s.Zones()), prev)
		}
		prev = len(s.Zones())
	}
}

// TestRelevantZonesPaperExample checks the §1 example: for the Figure 1
// network, Q = <[0.6,0.8],[0.6,0.65],[0.45,0.6]> involves zones 110, 1111
// and 1110.
func TestRelevantZonesPaperExample(t *testing.T) {
	s, _ := figure1System(t)
	q := event.NewQuery(event.Span(0.6, 0.8), event.Span(0.6, 0.65), event.Span(0.45, 0.6))
	got := zoneCodes(s.RelevantZones(q))
	sort.Strings(got)
	want := []string{"110", "1110", "1111"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("relevant zones = %v, want %v", got, want)
	}
}

// TestRelevantZonesPartialMatchExample checks the §1 partial-match
// example: Q = <*, [0.6,0.7], [0.4,0.6]> spans zones 010, 011, 110, 1110
// and 1111 — half the Figure 1 network.
func TestRelevantZonesPartialMatchExample(t *testing.T) {
	s, _ := figure1System(t)
	q := event.NewQuery(event.Unspecified(), event.Span(0.6, 0.7), event.Span(0.4, 0.6))
	got := zoneCodes(s.RelevantZones(q))
	sort.Strings(got)
	want := []string{"010", "011", "110", "1110", "1111"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("relevant zones = %v, want %v", got, want)
	}
}

func TestZoneOfMatchesValueRegion(t *testing.T) {
	s, _ := figure1System(t)
	tests := []struct {
		values []float64
		want   string
	}{
		{[]float64{0.7, 0.8, 0.2}, "110"},
		{[]float64{0.3, 0.3, 0.9}, "00"},
		{[]float64{0.8, 0.9, 0.9}, "1111"},
		{[]float64{0.6, 0.9, 0.9}, "1110"},
		{[]float64{0.1, 0.9, 0.1}, "010"},
	}
	for _, tt := range tests {
		if got := s.ZoneOf(tt.values).Code.String(); got != tt.want {
			t.Errorf("ZoneOf(%v) = %q, want %q", tt.values, got, tt.want)
		}
	}
}

func TestInsertStoresAtOwner(t *testing.T) {
	s, net := figure1System(t)
	e := event.New(0.7, 0.8, 0.2) // zone 110, owner node 5
	e.Seq = 9
	if err := s.Insert(0, e); err != nil {
		t.Fatal(err)
	}
	loads := s.StorageLoad()
	if loads[5] != 1 {
		t.Fatalf("storage loads = %v, want event at node 5", loads)
	}
	if net.Snapshot().Messages[network.KindInsert] == 0 {
		t.Error("insert generated no traffic")
	}
}

func TestInsertValidation(t *testing.T) {
	s, _ := figure1System(t)
	if err := s.Insert(0, event.New(1.2, 0.1, 0.1)); err == nil {
		t.Error("invalid event accepted")
	}
	if err := s.Insert(0, event.New(0.5, 0.5)); err == nil {
		t.Error("wrong dimensionality accepted")
	}
}

func TestQueryEndToEnd(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(l)
	s, err := New(net, gpsr.New(l), 3)
	if err != nil {
		t.Fatal(err)
	}

	src := rng.New(34)
	var all []event.Event
	for i := 0; i < 300; i++ {
		e := event.New(src.Float64(), src.Float64(), src.Float64())
		e.Seq = uint64(i + 1)
		all = append(all, e)
		if err := s.Insert(src.Intn(l.N()), e); err != nil {
			t.Fatal(err)
		}
	}

	queries := []event.Query{
		event.NewQuery(event.Span(0.1, 0.4), event.Span(0.2, 0.6), event.Span(0, 1)),
		event.NewQuery(event.Unspecified(), event.Span(0.5, 0.7), event.Unspecified()),
		event.NewQuery(event.Span(0, 0.05), event.Span(0, 0.05), event.Span(0, 0.05)),
		event.NewQuery(event.Span(0, 1), event.Span(0, 1), event.Span(0, 1)),
	}
	for qi, q := range queries {
		got, err := s.Query(src.Intn(l.N()), q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := q.Rewrite().Filter(all)
		gotSeqs := seqSet(got)
		if len(gotSeqs) != len(got) {
			t.Fatalf("query %d returned duplicates", qi)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for _, w := range want {
			if !gotSeqs[w.Seq] {
				t.Fatalf("query %d missing event %d", qi, w.Seq)
			}
		}
	}
}

func seqSet(events []event.Event) map[uint64]bool {
	m := make(map[uint64]bool, len(events))
	for _, e := range events {
		m[e.Seq] = true
	}
	return m
}

func TestQueryValidation(t *testing.T) {
	s, _ := figure1System(t)
	if _, err := s.Query(0, event.NewQuery(event.Span(0.5, 0.1), event.Span(0, 1), event.Span(0, 1))); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := s.Query(0, event.NewQuery(event.Span(0, 1))); err == nil {
		t.Error("wrong dimensionality accepted")
	}
}

func TestWiderQueryVisitsMoreZones(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(network.New(l), gpsr.New(l), 3)
	if err != nil {
		t.Fatal(err)
	}
	narrow := event.NewQuery(event.Span(0.4, 0.45), event.Span(0.4, 0.45), event.Span(0.4, 0.45))
	wide := event.NewQuery(event.Span(0.1, 0.9), event.Span(0.1, 0.9), event.Span(0.1, 0.9))
	if n, w := len(s.RelevantZones(narrow)), len(s.RelevantZones(wide)); n >= w {
		t.Errorf("narrow query visits %d zones, wide %d", n, w)
	}
}

func TestUnspecifiedFirstDimensionHurtsDIM(t *testing.T) {
	// The paper's Figure 7(b) claim: an unspecified first attribute
	// prevents pruning at the tree's top levels, so 1@1-partial queries
	// touch more zones than 1@3-partial queries of the same shape.
	l, err := field.Generate(field.DefaultSpec(300), rng.New(36))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(network.New(l), gpsr.New(l), 3)
	if err != nil {
		t.Fatal(err)
	}
	at1 := event.NewQuery(event.Unspecified(), event.Span(0.2, 0.25), event.Span(0.2, 0.25))
	at3 := event.NewQuery(event.Span(0.2, 0.25), event.Span(0.2, 0.25), event.Unspecified())
	if n1, n3 := len(s.RelevantZones(at1)), len(s.RelevantZones(at3)); n1 <= n3 {
		t.Errorf("1@1-partial visits %d zones, 1@3-partial %d; expected 1@1 > 1@3", n1, n3)
	}
}

func TestDisseminationString(t *testing.T) {
	if ChainDissemination.String() != "chain" || SplitDissemination.String() != "split" {
		t.Error("dissemination names wrong")
	}
	if Dissemination(9).String() == "" {
		t.Error("unknown dissemination has empty String")
	}
}

func TestSplitDisseminationSameResults(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	router := gpsr.New(l)
	chain, err := New(network.New(l), router, 3)
	if err != nil {
		t.Fatal(err)
	}
	split, err := New(network.New(l), router, 3, WithDissemination(SplitDissemination))
	if err != nil {
		t.Fatal(err)
	}

	src := rng.New(38)
	for i := 0; i < 300; i++ {
		e := event.New(src.Float64(), src.Float64(), src.Float64())
		e.Seq = uint64(i + 1)
		if err := chain.Insert(src.Intn(300), e); err != nil {
			t.Fatal(err)
		}
		if err := split.Insert(0, e); err != nil {
			t.Fatal(err)
		}
	}

	queries := []event.Query{
		event.NewQuery(event.Span(0.1, 0.4), event.Span(0.2, 0.6), event.Span(0, 1)),
		event.NewQuery(event.Unspecified(), event.Span(0.5, 0.7), event.Unspecified()),
		event.NewQuery(event.Span(0, 1), event.Span(0, 1), event.Span(0, 1)),
		event.NewQuery(event.Span(0.42, 0.43), event.Span(0.1, 0.2), event.Span(0.9, 0.95)),
	}
	for qi, q := range queries {
		a, err := chain.Query(5, q)
		if err != nil {
			t.Fatalf("chain query %d: %v", qi, err)
		}
		b, err := split.Query(5, q)
		if err != nil {
			t.Fatalf("split query %d: %v", qi, err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: chain %d results, split %d", qi, len(a), len(b))
		}
		bs := seqSet(b)
		for _, e := range a {
			if !bs[e.Seq] {
				t.Fatalf("query %d: split missing event %d", qi, e.Seq)
			}
		}
	}
}

func TestSplitDisseminationCostComparable(t *testing.T) {
	// Chain and split are different multicast shapes over the same zone
	// set; neither dominates universally, but they must stay within a
	// small factor of each other on a typical partial-match query.
	l, err := field.Generate(field.DefaultSpec(600), rng.New(39))
	if err != nil {
		t.Fatal(err)
	}
	router := gpsr.New(l)
	chainNet, splitNet := network.New(l), network.New(l)
	chain, err := New(chainNet, router, 3)
	if err != nil {
		t.Fatal(err)
	}
	split, err := New(splitNet, router, 3, WithDissemination(SplitDissemination))
	if err != nil {
		t.Fatal(err)
	}

	q := event.NewQuery(event.Unspecified(), event.Span(0.2, 0.3), event.Span(0.2, 0.3))
	if _, err := chain.Query(0, q); err != nil {
		t.Fatal(err)
	}
	if _, err := split.Query(0, q); err != nil {
		t.Fatal(err)
	}
	cc := chainNet.Snapshot().Messages[network.KindQuery]
	sc := splitNet.Snapshot().Messages[network.KindQuery]
	if cc == 0 || sc == 0 {
		t.Fatal("queries generated no traffic")
	}
	ratio := float64(sc) / float64(cc)
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("dissemination costs diverge: chain %d, split %d", cc, sc)
	}
}
