package dim

import (
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
)

// newUniverse builds a DIM system exposing its network and router, so
// tests can fail nodes at every layer (the chaos engine's view).
func newUniverse(t testing.TB, n int, seed int64, opts ...Option) (*System, *network.Network, *gpsr.Router) {
	t.Helper()
	l, err := field.Generate(field.DefaultSpec(n), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(l)
	router := gpsr.New(l)
	s, err := New(net, router, 3, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, net, router
}

func loadEvents(t testing.TB, s *System, n int, seed int64) []event.Event {
	t.Helper()
	src := rng.New(seed)
	var all []event.Event
	for i := 0; i < n; i++ {
		e := event.New(src.Float64(), src.Float64(), src.Float64())
		e.Seq = uint64(i + 1)
		all = append(all, e)
		if err := s.Insert(src.Intn(s.net.Layout().N()), e); err != nil {
			t.Fatal(err)
		}
	}
	return all
}

// crash kills a node at every layer, the way the chaos engine does.
func crash(t testing.TB, s *System, net *network.Network, router *gpsr.Router, id int) {
	t.Helper()
	router.Exclude(id)
	net.FailNode(id)
	if err := s.FailNode(id); err != nil {
		t.Fatal(err)
	}
}

func pickAlive(s *System) int {
	for i := range s.dead {
		if !s.dead[i] {
			return i
		}
	}
	return -1
}

func fullDomain() event.Query {
	return event.NewQuery(event.Span(0, 1), event.Span(0, 1), event.Span(0, 1))
}

func TestFailNodeLosesOnlyItsEvents(t *testing.T) {
	s, net, router := newUniverse(t, 300, 700)
	all := loadEvents(t, s, 300, 701)

	// The most-loaded node loses exactly its own events; everything else
	// survives and the query completes without error.
	victim, max := -1, 0
	for i, l := range s.StorageLoad() {
		if l > max {
			victim, max = i, l
		}
	}
	crash(t, s, net, router, victim)
	for i := range s.zones {
		if s.zones[i].Owner == victim {
			t.Fatalf("zone %v still owned by failed node", s.zones[i].Code)
		}
	}

	got, comp, err := s.QueryWithReport(pickAlive(s), fullDomain())
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Complete() {
		t.Errorf("completeness %d/%d after detected failure (zones re-homed)", comp.CellsReached, comp.CellsTotal)
	}
	if want := len(all) - max; len(got) != want {
		t.Errorf("recall %d, want %d (all but the victim's %d events)", len(got), want, max)
	}
}

func TestInsertRoutesToRehomedZone(t *testing.T) {
	s, net, router := newUniverse(t, 300, 710)
	e := event.New(0.5, 0.5, 0.5)
	victim := s.ZoneOf(e.Values).Owner
	crash(t, s, net, router, victim)

	next := s.ZoneOf(e.Values).Owner
	if next == victim || s.dead[next] {
		t.Fatalf("zone not re-homed: owner %d", next)
	}
	if err := s.Insert(pickAlive(s), e); err != nil {
		t.Fatalf("insert after re-homing: %v", err)
	}
	if len(s.storage[next]) != 1 {
		t.Errorf("event not stored at new owner %d", next)
	}
}

func TestUndetectedFailureDegradesGracefully(t *testing.T) {
	for _, d := range []Dissemination{ChainDissemination, SplitDissemination} {
		t.Run(d.String(), func(t *testing.T) {
			s, net, router := newUniverse(t, 300, 720, WithDissemination(d))
			all := loadEvents(t, s, 300, 721)

			victim, max := -1, 0
			for i, l := range s.StorageLoad() {
				if l > max {
					victim, max = i, l
				}
			}
			// Radio and routing die, but the zone table still points at the
			// corpse: the query must skip its zones, not error.
			router.Exclude(victim)
			net.FailNode(victim)

			sink := pickAlive(s)
			for sink == victim {
				sink++
			}
			got, comp, err := s.QueryWithReport(sink, fullDomain())
			if err != nil {
				t.Fatalf("undetected failure must degrade, not error: %v", err)
			}
			if comp.Complete() {
				t.Error("completeness reported full with an unreachable owner")
			}
			if comp.Retries == 0 {
				t.Error("no retries spent on the unreachable zones")
			}
			if len(comp.Unreached) != comp.CellsTotal-comp.CellsReached {
				t.Errorf("unreached list %d entries, want %d", len(comp.Unreached), comp.CellsTotal-comp.CellsReached)
			}
			if len(got) >= len(all) || len(got) == 0 {
				t.Errorf("partial recall = %d of %d", len(got), len(all))
			}
		})
	}
}

func TestFailRecoverFail(t *testing.T) {
	s, net, router := newUniverse(t, 200, 730)
	loadEvents(t, s, 100, 731)

	victim := s.zones[0].Owner
	crash(t, s, net, router, victim)
	router.Restore(victim)
	net.RecoverNode(victim)
	s.RecoverNode(victim)
	if s.Failed(victim) {
		t.Fatal("recovered node still failed")
	}
	if len(s.storage[victim]) != 0 {
		t.Fatal("rebooted node kept pre-failure storage")
	}
	crash(t, s, net, router, victim)
	if !s.Failed(victim) {
		t.Fatal("second failure not recorded")
	}
	if _, _, err := s.QueryWithReport(pickAlive(s), fullDomain()); err != nil {
		t.Fatal(err)
	}
}
