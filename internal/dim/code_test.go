package dim

import (
	"testing"

	"pooldcs/internal/geo"
	"pooldcs/internal/rng"
)

func mustCode(t *testing.T, s string) Code {
	t.Helper()
	c, err := ParseCode(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseCodeRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1", "110", "1111", "010", "00"} {
		c := mustCode(t, s)
		if c.String() != s {
			t.Errorf("ParseCode(%q).String() = %q", s, c.String())
		}
		if c.Len() != len(s) {
			t.Errorf("ParseCode(%q).Len() = %d", s, c.Len())
		}
	}
	if (Code{}).String() != "ε" {
		t.Errorf("empty code String = %q", Code{}.String())
	}
	if _, err := ParseCode("10x"); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestCodeBitsAndAppend(t *testing.T) {
	c := mustCode(t, "1101")
	want := []int{1, 1, 0, 1}
	for i, w := range want {
		if got := c.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
	if got := c.Append(0).String(); got != "11010" {
		t.Errorf("Append = %q", got)
	}
}

func TestIsPrefixOf(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"11", "110", true},
		{"11", "11", true},
		{"110", "11", false},
		{"10", "110", false},
		{"", "0", true},
	}
	for _, tt := range tests {
		a, b := mustCode(t, tt.a), mustCode(t, tt.b)
		if tt.a == "" {
			a = Code{}
		}
		if got := a.IsPrefixOf(b); got != tt.want {
			t.Errorf("%q.IsPrefixOf(%q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestValueRegionFigure1 reproduces the paper's Figure 1(b): the mapping
// from each zone code of the eight-sensor example to its three-dimensional
// value ranges.
func TestValueRegionFigure1(t *testing.T) {
	tests := []struct {
		code string
		want [3]geo.Interval
	}{
		{"010", [3]geo.Interval{geo.Iv(0, 0.5), geo.Iv(0.5, 1), geo.Iv(0, 0.5)}},
		{"011", [3]geo.Interval{geo.Iv(0, 0.5), geo.Iv(0.5, 1), geo.Iv(0.5, 1)}},
		{"00", [3]geo.Interval{geo.Iv(0, 0.5), geo.Iv(0, 0.5), geo.Iv(0, 1)}},
		{"110", [3]geo.Interval{geo.Iv(0.5, 1), geo.Iv(0.5, 1), geo.Iv(0, 0.5)}},
		{"1111", [3]geo.Interval{geo.Iv(0.75, 1), geo.Iv(0.5, 1), geo.Iv(0.5, 1)}},
		{"1110", [3]geo.Interval{geo.Iv(0.5, 0.75), geo.Iv(0.5, 1), geo.Iv(0.5, 1)}},
		{"100", [3]geo.Interval{geo.Iv(0.5, 1), geo.Iv(0, 0.5), geo.Iv(0, 0.5)}},
		{"101", [3]geo.Interval{geo.Iv(0.5, 1), geo.Iv(0, 0.5), geo.Iv(0.5, 1)}},
	}
	for _, tt := range tests {
		t.Run(tt.code, func(t *testing.T) {
			got := mustCode(t, tt.code).ValueRegion(3)
			for j := 0; j < 3; j++ {
				if got[j] != tt.want[j] {
					t.Errorf("attr %d region = %v, want %v", j+1, got[j], tt.want[j])
				}
			}
		})
	}
}

func TestGeoRect(t *testing.T) {
	tests := []struct {
		code string
		want geo.Rect
	}{
		{"0", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 100)}},
		{"1", geo.Rect{Min: geo.Pt(50, 0), Max: geo.Pt(100, 100)}},
		{"00", geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 50)}},
		{"010", geo.Rect{Min: geo.Pt(0, 50), Max: geo.Pt(25, 100)}},
		{"1111", geo.Rect{Min: geo.Pt(75, 75), Max: geo.Pt(100, 100)}},
		{"1110", geo.Rect{Min: geo.Pt(75, 50), Max: geo.Pt(100, 75)}},
	}
	for _, tt := range tests {
		if got := mustCode(t, tt.code).GeoRect(100); got != tt.want {
			t.Errorf("GeoRect(%q) = %v, want %v", tt.code, got, tt.want)
		}
	}
}

func TestEventCode(t *testing.T) {
	tests := []struct {
		values []float64
		depth  int
		want   string
	}{
		{[]float64{0.7, 0.8, 0.2}, 3, "110"},
		{[]float64{0.7, 0.8, 0.2}, 4, "1100"}, // attr1 0.7 < 0.75
		{[]float64{0.8, 0.8, 0.8}, 4, "1111"},
		{[]float64{0.1, 0.6, 0.3}, 3, "010"},
		{[]float64{0.49, 0.49, 0.49}, 6, "000111"}, // second round: 0.49 ≥ 0.25 on every attr
	}
	for _, tt := range tests {
		if got := EventCode(tt.values, tt.depth).String(); got != tt.want {
			t.Errorf("EventCode(%v, %d) = %q, want %q", tt.values, tt.depth, got, tt.want)
		}
	}
}

func TestEventCodeInOwnValueRegion(t *testing.T) {
	src := rng.New(20)
	for trial := 0; trial < 300; trial++ {
		k := 1 + src.Intn(4)
		vals := make([]float64, k)
		for j := range vals {
			vals[j] = src.Float64()
		}
		depth := src.Intn(12)
		region := EventCode(vals, depth).ValueRegion(k)
		for j, iv := range region {
			// Value regions are half-open above (except at 1.0).
			if vals[j] < iv.Lo || vals[j] >= iv.Hi {
				t.Fatalf("values %v depth %d: attr %d value %v outside region %v",
					vals, depth, j+1, vals[j], iv)
			}
		}
	}
}

func TestEventCodePrefixConsistency(t *testing.T) {
	// Deeper codes extend shallower codes of the same event.
	src := rng.New(21)
	for trial := 0; trial < 200; trial++ {
		vals := []float64{src.Float64(), src.Float64(), src.Float64()}
		shallow := EventCode(vals, 4)
		deep := EventCode(vals, 9)
		if !shallow.IsPrefixOf(deep) {
			t.Fatalf("EventCode depth 4 (%v) not prefix of depth 9 (%v) for %v",
				shallow, deep, vals)
		}
	}
}
