package dim

import (
	"testing"

	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
	"pooldcs/internal/trace"
)

func TestDIMTraceSpansAndCounters(t *testing.T) {
	l, err := field.Generate(field.DefaultSpec(300), rng.New(81))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(nil)
	net := network.New(l, network.WithTracer(tr))
	s, err := New(net, gpsr.New(l), 3, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(82)
	for i := 0; i < 100; i++ {
		if err := s.Insert(src.Intn(300), event.New(src.Float64(), src.Float64(), src.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	q := event.NewQuery(event.Span(0.2, 0.6), event.Span(0, 1), event.Span(0, 1))
	matches, err := s.Query(4, q)
	if err != nil {
		t.Fatal(err)
	}

	a, err := trace.Analyze(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.RootsByOp(trace.OpInsert)); got != 100 {
		t.Errorf("insert spans = %d, want 100", got)
	}
	queries := a.RootsByOp(trace.OpQuery)
	if len(queries) != 1 {
		t.Fatalf("query spans = %d, want 1", len(queries))
	}
	// Resolve records across the query span must add up to the result set.
	var resolved int
	for _, it := range queries[0].Items {
		if it.Record != nil && it.Record.Type == trace.TypeResolve {
			resolved += it.Record.N
		}
	}
	if resolved != len(matches) {
		t.Errorf("resolve records account for %d matches, query returned %d", resolved, len(matches))
	}
	// Every insert span carries a zone placement record.
	for _, ins := range a.RootsByOp(trace.OpInsert)[:5] {
		var placed bool
		for _, it := range ins.Items {
			if it.Record != nil && it.Record.Type == trace.TypePlace {
				placed = true
			}
		}
		if !placed {
			t.Errorf("insert span %d has no placement record", ins.ID)
		}
	}
	// Trace totals must match the counters, DIM and Pool alike.
	c := net.Snapshot()
	for _, k := range network.Kinds() {
		if got, want := a.ByKind[k.String()].Frames, c.Messages[k]; got != want {
			t.Errorf("%v frames: trace %d, counters %d", k, got, want)
		}
	}
}
