// Command poolviz renders the Pool scheme's structures as ASCII art: the
// cell-range tables of Figure 3, the relevant-cell maps of Figures 4 and
// 5, and a bird's-eye view of a deployed network with its Pools.
//
// Usage:
//
//	poolviz ranges [-l N]                      Figure-3 style range table
//	poolviz query  [-l N] -q "L:U,L:U,..."     relevant cells per Pool
//	poolviz layout [-n N] [-seed S]            deployment overview
//	poolviz route  [-n N] [-seed S] -from A -to B   GPSR path between nodes
//
// Query syntax: comma-separated per-attribute ranges, each "lo:hi", a
// single point value "v", or "*" for an unspecified attribute, e.g.
// -q "*,*,0.8:0.84" reproduces the paper's Example 3.2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pooldcs/internal/event"
	"pooldcs/internal/experiment"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/pool"
	"pooldcs/internal/rng"
	"pooldcs/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poolviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: poolviz ranges|query|layout [flags]")
	}
	switch args[0] {
	case "ranges":
		return runRanges(args[1:], out)
	case "query":
		return runQuery(args[1:], out)
	case "layout":
		return runLayout(args[1:], out)
	case "route":
		return runRoute(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// paperPools returns the Figure-2 Pools used by the worked examples.
func paperPools(side int) []pool.Pool {
	return []pool.Pool{
		{Dim: 1, Pivot: pool.CellID{X: 1, Y: 2}, Side: side},
		{Dim: 2, Pivot: pool.CellID{X: 2, Y: 10}, Side: side},
		{Dim: 3, Pivot: pool.CellID{X: 7, Y: 3}, Side: side},
	}
}

func runRanges(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ranges", flag.ContinueOnError)
	side := fs.Int("l", 5, "pool side length in cells")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := paperPools(*side)[0]

	table := texttable.New(fmt.Sprintf("Cell value ranges of P1 (l=%d), Equation 1 / Figure 3", *side), "vo\\ho")
	for ho := 0; ho < *side; ho++ {
		table.Columns = append(table.Columns, p.RangeH(ho).String())
	}
	for vo := *side - 1; vo >= 0; vo-- {
		row := []string{strconv.Itoa(vo)}
		for ho := 0; ho < *side; ho++ {
			row = append(row, p.RangeV(ho, vo).String())
		}
		table.AddRow(row...)
	}
	fmt.Fprintln(out, table)
	return nil
}

// parseQuery parses "lo:hi,lo:hi,*" syntax into a Query.
func parseQuery(s string) (event.Query, error) {
	parts := strings.Split(s, ",")
	ranges := make([]event.Range, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "*" {
			ranges = append(ranges, event.Unspecified())
			continue
		}
		lohi := strings.SplitN(part, ":", 2)
		lo, err := strconv.ParseFloat(lohi[0], 64)
		if err != nil {
			return event.Query{}, fmt.Errorf("bad bound %q: %w", lohi[0], err)
		}
		hi := lo
		if len(lohi) == 2 {
			hi, err = strconv.ParseFloat(lohi[1], 64)
			if err != nil {
				return event.Query{}, fmt.Errorf("bad bound %q: %w", lohi[1], err)
			}
		}
		ranges = append(ranges, event.Span(lo, hi))
	}
	q := event.NewQuery(ranges...)
	if err := q.Validate(); err != nil {
		return event.Query{}, err
	}
	return q, nil
}

func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	side := fs.Int("l", 5, "pool side length in cells")
	qstr := fs.String("q", "", `query, e.g. "0.2:0.3,0.25:0.35,0.21:0.24" or "*,*,0.8:0.84"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *qstr == "" {
		return fmt.Errorf("missing -q")
	}
	q, err := parseQuery(*qstr)
	if err != nil {
		return err
	}
	if q.Dims() != 3 {
		return fmt.Errorf("the worked-example layout is three-dimensional; got %d attributes", q.Dims())
	}

	fmt.Fprintf(out, "Query %v (rewritten %v)\n\n", q, q.Rewrite())
	for _, p := range paperPools(*side) {
		rq := q.Rewrite()
		rh, rv := p.QueryRanges(rq)
		fmt.Fprintf(out, "P%d pivot %v: R_H=%v R_V=%v\n", p.Dim, p.Pivot, rh, rv)
		relevant := make(map[pool.CellID]bool)
		for _, c := range p.RelevantCells(rq) {
			relevant[c] = true
		}
		// Render the pool grid, top row first; '#' marks relevant cells.
		for vo := p.Side - 1; vo >= 0; vo-- {
			var b strings.Builder
			for ho := 0; ho < p.Side; ho++ {
				if relevant[p.Pivot.Add(ho, vo)] {
					b.WriteString(" #")
				} else {
					b.WriteString(" .")
				}
			}
			fmt.Fprintln(out, b.String())
		}
		if len(relevant) == 0 {
			fmt.Fprintln(out, "(no relevant cells)")
		} else {
			cells := p.RelevantCells(rq)
			names := make([]string, len(cells))
			for i, c := range cells {
				names[i] = c.String()
			}
			fmt.Fprintln(out, "relevant:", strings.Join(names, " "))
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runLayout(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("layout", flag.ContinueOnError)
	n := fs.Int("n", 300, "number of sensor nodes")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := rng.New(*seed)
	env, err := experiment.NewEnv(*n, 3, src)
	if err != nil {
		return err
	}
	layout := env.Layout
	g := env.Pool.Grid()

	// Character grid: 2 cells per character column to keep aspect ratio.
	const maxWidth = 100
	step := 1
	for g.Cols/step > maxWidth {
		step++
	}
	fmt.Fprintf(out, "%d nodes, field %.0f m × %.0f m, %d×%d cells of %.0f m (1 char = %d cells)\n",
		layout.N(), layout.Side, layout.Side, g.Cols, g.Rows, g.Alpha, step)
	fmt.Fprintln(out, "digits = Pool cells (pool number), * = node present, . = empty")

	poolOf := make(map[pool.CellID]int)
	for _, p := range env.Pool.Pools() {
		for _, c := range p.Cells() {
			poolOf[c] = p.Dim
		}
	}
	occupied := make(map[pool.CellID]bool)
	for i := 0; i < layout.N(); i++ {
		occupied[g.CellOf(layout.Pos(i))] = true
	}

	for y := g.Rows - 1; y >= 0; y -= step {
		var b strings.Builder
		for x := 0; x < g.Cols; x += step {
			ch := "."
			for dy := 0; dy < step && ch == "."; dy++ {
				for dx := 0; dx < step; dx++ {
					c := pool.CellID{X: x + dx, Y: y - dy}
					if d, ok := poolOf[c]; ok {
						ch = strconv.Itoa(d)
						break
					}
					if occupied[c] {
						ch = "*"
					}
				}
			}
			b.WriteString(ch)
		}
		fmt.Fprintln(out, b.String())
	}
	return nil
}

func runRoute(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	n := fs.Int("n", 300, "number of sensor nodes")
	seed := fs.Int64("seed", 42, "random seed")
	from := fs.Int("from", 0, "source node")
	to := fs.Int("to", -1, "destination node")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := rng.New(*seed)
	layout, err := field.Generate(field.DefaultSpec(*n), src)
	if err != nil {
		return err
	}
	if *to < 0 {
		*to = layout.N() - 1
	}
	if *from < 0 || *from >= layout.N() || *to < 0 || *to >= layout.N() {
		return fmt.Errorf("nodes must be in 0..%d", layout.N()-1)
	}
	router := gpsr.New(layout)
	res, err := router.RouteToNode(*from, *to)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "GPSR %d → %d: %d hops (%d greedy, %d perimeter), distance %.0f m\n",
		*from, *to, res.Hops(), res.GreedyHops, res.PerimeterHops,
		layout.Pos(*from).Dist(layout.Pos(*to)))

	// Raster the field: '.' empty, 'o' node, '*' path, S source, D dest.
	const cols = 78
	cell := layout.Side / cols
	rows := cols / 2 // terminal characters are ~2× taller than wide
	rcell := layout.Side / float64(rows)
	raster := make([][]byte, rows)
	for y := range raster {
		raster[y] = make([]byte, cols)
		for x := range raster[y] {
			raster[y][x] = '.'
		}
	}
	plot := func(id int, ch byte) {
		p := layout.Pos(id)
		x := int(p.X / cell)
		y := int(p.Y / rcell)
		if x >= cols {
			x = cols - 1
		}
		if y >= rows {
			y = rows - 1
		}
		raster[rows-1-y][x] = ch
	}
	for i := 0; i < layout.N(); i++ {
		plot(i, 'o')
	}
	for _, id := range res.Path {
		plot(id, '*')
	}
	plot(*from, 'S')
	plot(*to, 'D')
	for _, row := range raster {
		fmt.Fprintln(out, string(row))
	}
	fmt.Fprintln(out, "path:", res.Path)
	return nil
}
