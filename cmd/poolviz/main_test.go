package main

import (
	"strings"
	"testing"

	"pooldcs/internal/event"
)

func TestParseQuery(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "0.2:0.3,0.25:0.35,0.21:0.24", want: "<[0.200, 0.300], [0.250, 0.350], [0.210, 0.240]>"},
		{in: "*,*,0.8:0.84", want: "<*, *, [0.800, 0.840]>"},
		{in: "0.5", want: "<[0.500]>"},
		{in: " 0.1:0.2 , * ", want: "<[0.100, 0.200], *>"},
		{in: "abc", wantErr: true},
		{in: "0.5:xyz", wantErr: true},
		{in: "0.9:0.1", wantErr: true}, // inverted range
		{in: "*,*", wantErr: true},     // all wild
		{in: "1.5:1.7", wantErr: true}, // out of domain
	}
	for _, tt := range tests {
		q, err := parseQuery(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseQuery(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && q.String() != tt.want {
			t.Errorf("parseQuery(%q) = %v, want %v", tt.in, q, tt.want)
		}
	}
}

func TestRunRanges(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"ranges"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Figure 3 landmarks.
	for _, want := range []string{"[0.0000, 0.2000)", "[0.2400, 0.3200)", "[0.8000, 1.0000)"} {
		if !strings.Contains(got, want) {
			t.Errorf("ranges output missing %q:\n%s", want, got)
		}
	}
}

func TestRunQueryExample32(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"query", "-q", "*,*,0.8:0.84"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Figure 5's relevant cells.
	for _, want := range []string{"C(5,6)", "C(6,14)", "C(11,3)", "C(11,7)"} {
		if !strings.Contains(got, want) {
			t.Errorf("query output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "#") {
		t.Error("no cells marked in the grid rendering")
	}
}

func TestRunQueryNoRelevantCells(t *testing.T) {
	var out strings.Builder
	// Example 3.1's query leaves P3 empty.
	if err := run([]string{"query", "-q", "0.2:0.3,0.25:0.35,0.21:0.24"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(no relevant cells)") {
		t.Error("P3's empty result not rendered")
	}
	if !strings.Contains(out.String(), "C(2,5)") {
		t.Error("Figure 4's C(2,5) missing")
	}
}

func TestRunLayout(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"layout", "-n", "300", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "300 nodes") {
		t.Errorf("layout header missing:\n%.200s", got)
	}
	// All three pools must appear.
	for _, d := range []string{"1", "2", "3"} {
		if !strings.Contains(got, d) {
			t.Errorf("pool %s not rendered", d)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"query"}, &out); err == nil {
		t.Error("query without -q accepted")
	}
	if err := run([]string{"query", "-q", "0.1:0.2"}, &out); err == nil {
		t.Error("non-3-dimensional query accepted")
	}
}

func TestPaperPoolsMatchFigure2(t *testing.T) {
	pools := paperPools(5)
	if len(pools) != 3 {
		t.Fatal("want 3 pools")
	}
	if pools[0].Pivot.X != 1 || pools[0].Pivot.Y != 2 {
		t.Errorf("PC1 = %v, want C(1,2)", pools[0].Pivot)
	}
	if pools[1].Pivot.X != 2 || pools[1].Pivot.Y != 10 {
		t.Errorf("PC2 = %v, want C(2,10)", pools[1].Pivot)
	}
	if pools[2].Pivot.X != 7 || pools[2].Pivot.Y != 3 {
		t.Errorf("PC3 = %v, want C(7,3)", pools[2].Pivot)
	}
}

func TestParseQueryPointValue(t *testing.T) {
	q, err := parseQuery("0.25,0.5:0.6,*")
	if err != nil {
		t.Fatal(err)
	}
	if q.Ranges[0] != event.PointRange(0.25) {
		t.Errorf("point range = %+v", q.Ranges[0])
	}
}

func TestRunRoute(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"route", "-n", "300", "-seed", "3", "-from", "1", "-to", "250"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "GPSR 1 → 250") {
		t.Errorf("route header missing:\n%.200s", got)
	}
	if !strings.Contains(got, "S") || !strings.Contains(got, "D") {
		t.Error("source/destination markers missing")
	}
	if !strings.Contains(got, "path: [1") {
		t.Error("path listing missing")
	}
}

func TestRunRouteDefaults(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"route"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GPSR 0 → 299") {
		t.Errorf("default route wrong:\n%.120s", out.String())
	}
}

func TestRunRouteValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"route", "-from", "-2"}, &out); err == nil {
		t.Error("negative source accepted")
	}
	if err := run([]string{"route", "-to", "99999"}, &out); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

// FuzzParseQuery ensures arbitrary query strings never panic the parser
// and that accepted queries are valid.
func FuzzParseQuery(f *testing.F) {
	f.Add("0.2:0.3,0.25:0.35,0.21:0.24")
	f.Add("*,*,0.8:0.84")
	f.Add("")
	f.Add(":::,,,***")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := parseQuery(s)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("parseQuery(%q) returned invalid query: %v", s, err)
		}
	})
}
