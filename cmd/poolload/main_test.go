package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden locks the exact curves of the seeded quick sweeps: any
// change to the arrival stream, the station model, admission control, or
// latency accounting shows up as a golden diff. Regenerate intentionally
// with:
//
//	go test ./cmd/poolload -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"pool-open", []string{"-quick"}},
		{"dim-open", []string{"-quick", "-backend", "dim"}},
		{"ght-open", []string{"-quick", "-backend", "ght", "-rates", "50,200,400"}},
		{"pool-actor-open", []string{"-quick", "-backend", "pool-actor", "-rates", "50,200"}},
		{"pool-closed", []string{"-quick", "-mode", "closed", "-admission", "admit-all"}},
		{"pool-batch", []string{"-quick", "-admission", "shed", "-batch", "8", "-rates", "200,400"}},
		{"pool-token", []string{"-quick", "-admission", "token", "-token-rate", "40", "-rates", "100,400"}},
		{"pool-uniform", []string{"-quick", "-arrival", "uniform", "-admission", "admit-all", "-rates", "100,400"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "sideways"},
		{"-arrival", "bursty"},
		{"-admission", "magic"},
		{"-backend", "nosuch", "-quick"},
		{"-rates", "10,x"},
		{"-rates", "-5"},
		{"-mix", "1,2"},
		{"-format", "yaml", "-quick", "-rates", "10"},
		{"positional"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseMixDefaults(t *testing.T) {
	m, err := parseMix("", "ght")
	if err != nil {
		t.Fatal(err)
	}
	if m.Range != 0 {
		t.Fatalf("ght default mix includes ranges: %+v", m)
	}
	m, err = parseMix("", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if m.Point <= 0 || m.Range <= 0 {
		t.Fatalf("pool default mix %+v", m)
	}
	if _, err := parseMix("0.5,0.25,0.25", "pool"); err != nil {
		t.Fatal(err)
	}
}
