// Command poolload drives a DCS deployment with sustained traffic and
// prints the throughput-vs-latency curve: the service-level view
// (delivered throughput, tail latency, SLO compliance, shed rate) that
// the per-query message tables of poolsim cannot show.
//
// Usage:
//
//	poolload [flags]
//
// A run sweeps offered load over one backend. In open-loop mode each
// sweep point offers Poisson (or uniformly spaced) arrivals at a fixed
// rate regardless of how the system copes — the regime that exposes the
// saturation knee. In closed-loop mode a fixed client population waits
// for each completion before issuing again, which self-throttles and
// hides the knee; sweeping -clients shows that contrast directly.
//
// Flags:
//
//	-seed N          random seed (default 42)
//	-backend B       pool | dim | ght | pool-actor (default pool)
//	-mode M          open | closed (default open)
//	-arrival A       poisson | uniform open-loop arrivals (default poisson)
//	-rates LIST      open-loop offered rates swept, ops/sec (default 25,50,100,200,400)
//	-clients LIST    closed-loop client populations swept (default 4,16,64)
//	-think D         closed-loop mean think time (default 20ms)
//	-duration D      offered-traffic horizon per point (default 5s)
//	-admission P     admit-all | shed | token | both (default both; both = admit-all and shed)
//	-token-rate R    token-bucket sustained admissions/sec per station (default 100)
//	-batch N         coalesce up to N engaged queries instead of shedding (default 0 = reject)
//	-mix P,R,I       class weights point,range,insert (default 0.6,0.3,0.1; ght: 0.9,0,0.1)
//	-skew S          Zipf exponent of query/event populations (default 0.8)
//	-bins N          Zipf bins (default 64)
//	-nodes N         deployment size (default 300)
//	-events-per-node N  preloaded events per sensor (default 3)
//	-slo-p99 D       per-window p99 target (default 500ms)
//	-slo-window D    SLO evaluation window (default 2s)
//	-quick           smaller deployment, shorter horizon (smoke run)
//	-format F        text | csv | markdown (default text)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pooldcs/internal/load"
	"pooldcs/internal/rng"
	"pooldcs/internal/sim"
	"pooldcs/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poolload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poolload", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "random seed")
	backend := fs.String("backend", "pool", "backend: "+strings.Join(load.Backends(), " | "))
	modeFlag := fs.String("mode", "open", "arrival regime: open | closed")
	arrivalFlag := fs.String("arrival", "poisson", "open-loop arrival process: poisson | uniform")
	ratesFlag := fs.String("rates", "25,50,100,200,400", "comma-separated open-loop offered rates (ops/sec)")
	clientsFlag := fs.String("clients", "4,16,64", "comma-separated closed-loop client populations")
	think := fs.Duration("think", 20*time.Millisecond, "closed-loop mean think time")
	duration := fs.Duration("duration", 5*time.Second, "offered-traffic horizon per sweep point (virtual time)")
	admissionFlag := fs.String("admission", "both", "admission policy: admit-all | shed | token | both")
	tokenRate := fs.Float64("token-rate", 100, "token-bucket sustained admissions/sec per station")
	batch := fs.Int("batch", 0, "coalesce up to N engaged queries into one batch instead of shedding (0 = reject)")
	mixFlag := fs.String("mix", "", "class weights point,range,insert (default 0.6,0.3,0.1; ght defaults to 0.9,0,0.1)")
	skew := fs.Float64("skew", 0.8, "Zipf exponent of the query and event populations")
	bins := fs.Int("bins", 64, "Zipf bins")
	nodes := fs.Int("nodes", 300, "deployment size")
	perNode := fs.Int("events-per-node", 3, "preloaded events per sensor")
	sloP99 := fs.Duration("slo-p99", 500*time.Millisecond, "per-window p99 latency target")
	sloWindow := fs.Duration("slo-window", 2*time.Second, "SLO evaluation window")
	quick := fs.Bool("quick", false, "smoke run: smaller deployment, shorter horizon")
	format := fs.String("format", "text", "output format: text, csv, or markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (poolload takes only flags)", fs.Arg(0))
	}

	if *quick {
		*nodes = 120
		*duration = 3 * time.Second
	}

	var mode load.Mode
	switch *modeFlag {
	case "open":
		mode = load.Open
	case "closed":
		mode = load.Closed
	default:
		return fmt.Errorf("unknown mode %q (open | closed)", *modeFlag)
	}
	var arrival load.ArrivalKind
	switch *arrivalFlag {
	case "poisson":
		arrival = load.Poisson
	case "uniform":
		arrival = load.Uniform
	default:
		return fmt.Errorf("unknown arrival %q (poisson | uniform)", *arrivalFlag)
	}

	var policies []load.Policy
	switch *admissionFlag {
	case "admit-all":
		policies = []load.Policy{load.AdmitAll}
	case "shed":
		policies = []load.Policy{load.ShedOnDepth}
	case "token":
		policies = []load.Policy{load.TokenBucket}
	case "both":
		policies = []load.Policy{load.AdmitAll, load.ShedOnDepth}
	default:
		return fmt.Errorf("unknown admission policy %q (admit-all | shed | token | both)", *admissionFlag)
	}

	mix, err := parseMix(*mixFlag, *backend)
	if err != nil {
		return err
	}

	// The sweep variable: offered rate (open loop) or population (closed).
	var sweep []float64
	var sweepCol string
	if mode == load.Open {
		sweepCol = "offered/s"
		if sweep, err = parseFloats(*ratesFlag); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	} else {
		sweepCol = "clients"
		if sweep, err = parseFloats(*clientsFlag); err != nil {
			return fmt.Errorf("-clients: %w", err)
		}
	}

	tbl := texttable.New(
		fmt.Sprintf("poolload: %s, %s loop, %d nodes, %v horizon (virtual), SLO p99<%v per %v",
			*backend, *modeFlag, *nodes, *duration, *sloP99, *sloWindow),
		"admission", sweepCol, "offered", "served/s", "shed%", "degraded", "p50ms", "p99ms", "slo%", "maxdepth", "abandoned")

	for _, policy := range policies {
		for _, x := range sweep {
			cfg := load.Config{
				Seed:     *seed,
				Mode:     mode,
				Arrival:  arrival,
				Duration: *duration,
				Dims:     3,
				Mix:      mix,
				Skew:     *skew,
				Bins:     *bins,
				SLO:      load.SLO{Window: *sloWindow, P99: *sloP99},
				Admission: load.AdmissionConfig{
					Policy:     policy,
					Rate:       *tokenRate,
					BatchLimit: *batch,
				},
			}
			if mode == load.Open {
				cfg.Rate = x
			} else {
				cfg.Clients = int(x)
				cfg.Think = *think
			}
			rep, err := runPoint(*backend, *nodes, *perNode, cfg)
			if err != nil {
				return err
			}
			q := rep.QueryLatency()
			tbl.AddRow(
				policy.String(),
				texttable.Float(x, 0),
				strconv.FormatUint(rep.Offered, 10),
				texttable.Float(rep.ServedPerSec(), 1),
				texttable.Float(rep.ShedPct(), 1),
				strconv.FormatUint(rep.Degraded, 10),
				texttable.Int(int(q.Quantile(50))),
				texttable.Int(int(q.Quantile(99))),
				texttable.Float(rep.SLOPct(), 0),
				texttable.Int(rep.MaxDepth),
				strconv.FormatUint(rep.Abandoned, 10),
			)
		}
	}

	switch *format {
	case "text":
		fmt.Fprintln(out, tbl.String())
	case "csv":
		fmt.Fprintf(out, "# %s\n%s\n", tbl.Title, tbl.CSV())
	case "markdown":
		fmt.Fprintf(out, "### %s\n\n%s\n", tbl.Title, tbl.Markdown())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

// runPoint deploys the backend fresh and executes one sweep point, so
// points are independent and the sweep order cannot leak state.
func runPoint(backend string, nodes, perNode int, cfg load.Config) (*load.Report, error) {
	sched := sim.NewScheduler()
	dep, err := load.Deploy(backend, nodes, cfg.Dims, perNode, rng.New(cfg.Seed), sched, load.CostModel{})
	if err != nil {
		return nil, err
	}
	eng, err := load.NewEngine(sched, dep.Target, dep.Nodes, cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// parseMix parses "point,range,insert" weights; empty picks the backend
// default (ght has no range-query support, so its default mix omits
// ranges).
func parseMix(s, backend string) (load.Mix, error) {
	if s == "" {
		if backend == "ght" {
			return load.Mix{Point: 0.9, Insert: 0.1}, nil
		}
		return load.DefaultMix, nil
	}
	parts, err := parseFloats(s)
	if err != nil {
		return load.Mix{}, fmt.Errorf("-mix: %w", err)
	}
	if len(parts) != 3 {
		return load.Mix{}, fmt.Errorf("-mix needs three weights point,range,insert, got %d", len(parts))
	}
	return load.Mix{Point: parts[0], Range: parts[1], Insert: parts[2]}, nil
}

// parseFloats parses a comma-separated list of non-negative numbers.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative value %g", v)
		}
		out = append(out, v)
	}
	return out, nil
}
