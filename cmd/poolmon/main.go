// Command poolmon runs an instrumented Pool deployment on the
// discrete-event kernel and reports its live metrics: per-node counters,
// hotspot and load-balance analytics, sampled time series, and
// Prometheus/JSON exports.
//
// The monitored run drives the full stack: the synchronous pool.System
// answers the range-query workload (splitter load, query fan-out), the
// asynchronous actor engine executes the same workload as real message
// exchanges (mailbox depth, in-flight operations), the discovery beacon
// protocol runs throughout, and an optional churn plan crashes part of
// the deployment while the chaos engine repairs around it. Every number
// shown is read from one metrics.Registry sampled at -tick.
//
// Usage:
//
//	poolmon [flags]
//
// Flags:
//
//	-n N          deployment size (default 300)
//	-seed N       random seed (default 42)
//	-dims K       event dimensionality (default 3)
//	-events N     events per node (default 3)
//	-queries N    range queries spread over the horizon (default 40)
//	-churn PCT    percent of nodes crashed across the horizon (default 0)
//	-repair       mirror every cell and run background anti-entropy repair
//	-autopsy      attach the flight recorder to the actor engine and export
//	              the attrib_* phase-attribution and slo_burn_* families
//	-slo D        query p99 SLO for the burn-rate accounting (default 500ms)
//	-horizon D    virtual run time (default 30s)
//	-tick D       sampling period (default 1s)
//	-top K        rows in the hotspot tables (default 5)
//	-format F     text | prom | json (default text)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"pooldcs/internal/antientropy"
	"pooldcs/internal/attrib"
	"pooldcs/internal/chaos"
	"pooldcs/internal/dcs"
	"pooldcs/internal/discovery"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/metrics"
	"pooldcs/internal/network"
	"pooldcs/internal/node"
	"pooldcs/internal/pool"
	"pooldcs/internal/rng"
	"pooldcs/internal/sim"
	"pooldcs/internal/texttable"
	"pooldcs/internal/trace"
	"pooldcs/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poolmon:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poolmon", flag.ContinueOnError)
	n := fs.Int("n", 300, "deployment size")
	seed := fs.Int64("seed", 42, "random seed")
	dims := fs.Int("dims", 3, "event dimensionality")
	events := fs.Int("events", 3, "events per node")
	queries := fs.Int("queries", 40, "range queries spread over the horizon")
	churn := fs.Int("churn", 0, "percent of nodes crashed across the horizon")
	repair := fs.Bool("repair", false, "mirror every cell and run background anti-entropy repair")
	autopsy := fs.Bool("autopsy", false, "attach the flight recorder and export attrib_*/slo_burn_* families")
	slo := fs.Duration("slo", 500*time.Millisecond, "query p99 SLO for the burn-rate accounting")
	horizon := fs.Duration("horizon", 30*time.Second, "virtual run time")
	tick := fs.Duration("tick", time.Second, "sampling period")
	top := fs.Int("top", 5, "rows in the hotspot tables")
	format := fs.String("format", "text", "output format: text, prom, or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *tick <= 0 || *horizon <= 0 {
		return fmt.Errorf("tick and horizon must be positive")
	}
	if *churn < 0 || *churn > 90 {
		return fmt.Errorf("churn %d%% outside [0, 90]", *churn)
	}

	reg := metrics.New()
	src := rng.New(*seed)
	layout, err := field.Generate(field.DefaultSpec(*n), src.Fork("layout"))
	if err != nil {
		return err
	}
	sched := sim.NewScheduler()
	net := network.New(layout, network.WithMetrics(reg))
	router := gpsr.New(layout)
	poolOpts := []pool.Option{pool.WithMetrics(reg)}
	if *repair {
		poolOpts = append(poolOpts, pool.WithReplication())
	}
	sys, err := pool.New(net, router, *dims, src.Fork("pivots"), poolOpts...)
	if err != nil {
		return err
	}
	// The actor engine shares the pool layout so both implementations
	// observe the same cells.
	var pivots []pool.CellID
	for _, p := range sys.Pools() {
		pivots = append(pivots, p.Pivot)
	}
	actors, err := node.NewEngine(net, router, sched, *dims, src.Fork("actors"), pivots)
	if err != nil {
		return err
	}
	actors.EnableMetrics(reg)
	// The flight recorder only ever hangs off the actor engine: it is the
	// layer with real virtual-time exchanges, so its query spans carry the
	// durations the attribution decomposes. Without -autopsy no tracer is
	// attached and the exposition stays byte-identical.
	var flight *trace.Tracer
	if *autopsy {
		flight = trace.NewRing(sched, autopsyRing)
		actors.SetTracer(flight)
	}
	disc := discovery.New(net, sched, src.Fork("beacons"), discovery.Config{})
	disc.EnableMetrics(reg)
	// With -repair, rejoining nodes kick an immediate reconciliation
	// round through the engine's recovery hook.
	var rec *antientropy.Reconciler
	engineOpts := []chaos.EngineOption{chaos.WithFailureDetection(disc), chaos.WithMetrics(reg)}
	if *repair {
		engineOpts = append(engineOpts, chaos.WithRecoveryHook(func(int) {
			if rec != nil {
				rec.Kick()
			}
		}))
	}
	engine := chaos.NewEngine(sched, net, router, []chaos.System{sys}, engineOpts...)
	if *repair {
		rec = antientropy.New(sched, net, router, antientropy.Config{}, sys)
		rec.EnableMetrics(reg)
	}
	if *churn > 0 {
		plan := chaos.RandomChurn(src.Fork("churn"), *n, float64(*churn)/100, 0.25, *horizon)
		if err := engine.Schedule(plan); err != nil {
			return err
		}
	}

	// Inserts spread over the first half of the horizon, queries over the
	// second; both run through the synchronous system and the actor
	// engine, so the protocol counters and the mailbox gauges move
	// together. Operations hitting crashed nodes degrade instead of
	// aborting the run — that is exactly what the drop and error counters
	// are there to show.
	gen := workload.NewUniformEvents(src.Fork("events"), *dims)
	totalEvents := *n * *events
	half := *horizon / 2
	var fatal error
	for i := 0; i < totalEvents; i++ {
		at := time.Duration(float64(i) / float64(totalEvents) * float64(half))
		origin, ev := i%*n, gen.Next()
		if err := sched.At(at, func() {
			if err := sys.Insert(origin, ev); err != nil && !dcs.IsDegradable(err) && fatal == nil {
				fatal = err
			}
			if err := actors.Insert(origin, ev, nil); err != nil && fatal == nil {
				fatal = err
			}
		}); err != nil {
			return err
		}
	}
	qgen := workload.NewQueries(src.Fork("queries"), *dims)
	sinkSrc := src.Fork("sinks")
	for i := 0; i < *queries; i++ {
		at := half + time.Duration(float64(i)/float64(*queries)*float64(half))
		sink, q := sinkSrc.Intn(*n), qgen.ExactMatch(workload.ExponentialSizes)
		if err := sched.At(at, func() {
			for engine.Down(sink) {
				sink = (sink + 1) % *n
			}
			if _, _, err := sys.QueryWithReport(sink, q); err != nil && fatal == nil {
				fatal = err
			}
			if err := actors.Query(sink, q, nil); err != nil && fatal == nil {
				fatal = err
			}
		}); err != nil {
			return err
		}
	}

	stop := reg.StartSampling(sched, *tick)
	disc.Start()
	if rec != nil {
		rec.Start()
	}
	if err := sched.At(*horizon, func() {
		stop()
		disc.Stop()
		if rec != nil {
			rec.Stop()
		}
	}); err != nil {
		return err
	}
	sched.Run()
	if fatal != nil {
		return fatal
	}
	if rec != nil {
		for _, err := range rec.Errs() {
			return err
		}
	}
	if *autopsy {
		registerAutopsy(reg, flight, *slo, *tick)
	}

	switch *format {
	case "prom":
		_, err := reg.Snapshot().WriteTo(out)
		return err
	case "json":
		return reg.Snapshot().WriteJSON(out)
	case "text":
		return renderText(out, reg, *n, *churn, *horizon, *top)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// autopsyRing is the flight-recorder capacity: large enough that a
// default poolmon horizon never evicts, bounded so a pathological run
// cannot grow without limit.
const autopsyRing = 1 << 18

// registerAutopsy attributes the recorded query spans and registers the
// attrib_* and slo_burn_* families. The burn rates follow the load
// engine's accounting: the run is cut into sampling-period windows, a
// window breaches when its query p99 exceeds the SLO, and the breached
// fraction (over the last six windows for fast, the whole run for slow)
// is divided by a 5% error budget.
func registerAutopsy(reg *metrics.Registry, flight *trace.Tracer, slo, window time.Duration) {
	events := flight.Events()
	a, _ := trace.Analyze(events)
	bds := attrib.Attribute(events, a, attrib.Options{})

	phases := make([]string, 0, int(attrib.NumPhases))
	for _, p := range attrib.Phases() {
		phases = append(phases, p.String())
	}
	phaseMs := reg.CounterVec("attrib_phase_ms_total",
		"latency mass attributed to each phase across traced queries (ms)", "phase", phases)
	for _, bd := range bds {
		for p, d := range bd.Phases {
			phaseMs.Add(p, uint64(d/time.Millisecond))
		}
	}
	reg.Counter("attrib_queries_total", "query spans decomposed by the autopsy").Add(uint64(len(bds)))
	if flight.Dropped() > 0 {
		reg.Counter("attrib_trace_dropped_total", "flight-recorder events evicted before analysis").Add(flight.Dropped())
	}

	fast, slow := burnRates(bds, slo, window)
	reg.GaugeFunc("slo_burn_fast",
		"breached-window fraction over the last 6 windows divided by the error budget",
		func() float64 { return fast })
	reg.GaugeFunc("slo_burn_slow",
		"breached-window fraction over the whole run divided by the error budget",
		func() float64 { return slow })
}

// burnRates buckets query completions into windows and returns the
// fast (last six windows) and slow (whole run) burn rates against a 5%
// error budget.
func burnRates(bds []attrib.Breakdown, slo, window time.Duration) (fast, slow float64) {
	const (
		budget      = 0.05
		fastWindows = 6
	)
	if len(bds) == 0 || window <= 0 {
		return 0, 0
	}
	byWindow := map[int64][]int64{}
	var last int64
	for _, bd := range bds {
		w := int64(bd.End / window)
		byWindow[w] = append(byWindow[w], int64(bd.Total/time.Millisecond))
		if w > last {
			last = w
		}
	}
	breached := func(lats []int64) bool {
		if len(lats) == 0 {
			return false
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rank := (99*len(lats) + 99) / 100
		if rank < 1 {
			rank = 1
		}
		return lats[rank-1] > int64(slo/time.Millisecond)
	}
	var total, bad, fastTotal, fastBad int
	for w := int64(0); w <= last; w++ {
		total++
		b := breached(byWindow[w])
		if b {
			bad++
		}
		if w > last-fastWindows {
			fastTotal++
			if b {
				fastBad++
			}
		}
	}
	slow = float64(bad) / float64(total) / budget
	if fastTotal > 0 {
		fast = float64(fastBad) / float64(fastTotal) / budget
	}
	return fast, slow
}

// renderText prints the human-readable report: family values, balance
// analytics, hotspot tables, and sampled series.
func renderText(out io.Writer, reg *metrics.Registry, n, churn int, horizon time.Duration, top int) error {
	fmt.Fprintf(out, "poolmon: %d-node Pool deployment, horizon %v, churn %d%%\n\n", n, horizon, churn)

	snap := reg.Snapshot()
	families := texttable.New("Metric families (scalar reductions)", "Family", "Kind", "Value")
	for _, f := range snap.Families {
		families.AddRow(f.Name, f.Kind, formatScalar(reg.Value(f.Name)))
	}
	fmt.Fprintln(out, families.String())

	balance := texttable.New("Load balance (per-node vectors)", "Vector", "Gini", "CoV", "Max", "Top share%")
	for _, name := range []string{"pool_stored_events", "node_stored_events", "net_tx_frames_total", "net_node_energy_joules"} {
		loads := reg.NodeValues(name)
		if loads == nil {
			continue
		}
		b := metrics.Analyze(loads)
		balance.AddRow(name,
			texttable.Float(b.Gini, 3),
			texttable.Float(b.CoV, 2),
			formatScalar(b.Max),
			texttable.Float(b.TopShare*100, 1))
	}
	fmt.Fprintln(out, balance.String())

	for _, name := range []string{"pool_stored_events", "net_tx_frames_total"} {
		loads := reg.NodeValues(name)
		if loads == nil {
			continue
		}
		hot := texttable.New(fmt.Sprintf("Hotspots: %s", name), "Rank", "Node", "Load", "Share%")
		for i, h := range metrics.TopK(loads, top) {
			hot.AddRow(texttable.Int(i+1), texttable.Int(h.Node),
				formatScalar(h.Load), texttable.Float(h.Share*100, 1))
		}
		fmt.Fprintln(out, hot.String())
	}

	series := texttable.New("Sampled series", "Series", "Points", "First", "Last", "Min", "Mean", "Max", "Trend")
	for _, s := range reg.Summaries(16) {
		series.AddRow(s.Name, texttable.Int(s.Points),
			formatScalar(s.First), formatScalar(s.Last),
			formatScalar(s.Min), texttable.Float(s.Mean, 1), formatScalar(s.Max),
			s.Spark)
	}
	fmt.Fprintln(out, series.String())
	return nil
}

// formatScalar renders a metric value compactly: integers without a
// fraction, everything else with three significant decimals.
func formatScalar(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
