package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden runs poolmon with args and compares against testdata/<name>.golden.
func golden(t *testing.T, name string, args []string) {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGolden locks the exact monitoring report of a seeded run, with and
// without churn. Regenerate intentionally with:
//
//	go test ./cmd/poolmon -run Golden -update
func TestGolden(t *testing.T) {
	golden(t, "quiet", []string{"-n", "300", "-queries", "20"})
	golden(t, "churn", []string{"-n", "300", "-queries", "20", "-churn", "10"})
	golden(t, "repair", []string{"-n", "300", "-queries", "20", "-churn", "10", "-repair"})
	golden(t, "autopsy", []string{"-n", "300", "-queries", "20", "-churn", "10", "-autopsy", "-slo", "60ms"})
}

// TestAutopsyFamilies checks that -autopsy surfaces the attribution and
// burn-rate families in every export format, and that without the flag
// none of them appear — the exposition contract that keeps existing
// dashboards byte-identical.
func TestAutopsyFamilies(t *testing.T) {
	var prom strings.Builder
	if err := run([]string{"-n", "300", "-queries", "10", "-autopsy", "-slo", "60ms", "-format", "prom"}, &prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE attrib_phase_ms_total counter",
		`attrib_phase_ms_total{phase="transmit"}`,
		`attrib_phase_ms_total{phase="repair"}`,
		"# TYPE attrib_queries_total counter",
		"# TYPE slo_burn_fast gauge",
		"# TYPE slo_burn_slow gauge",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom output missing %q", want)
		}
	}

	var plain strings.Builder
	if err := run([]string{"-n", "300", "-queries", "10", "-format", "prom"}, &plain); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"attrib_", "slo_burn_"} {
		if strings.Contains(plain.String(), family) {
			t.Errorf("default run leaks %s* families into the exposition", family)
		}
	}

	var text strings.Builder
	if err := run([]string{"-n", "300", "-queries", "10", "-autopsy"}, &text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"attrib_queries_total", "slo_burn_slow"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

// TestRepairFamilies checks that -repair surfaces the anti-entropy
// metric families through every export format.
func TestRepairFamilies(t *testing.T) {
	var prom strings.Builder
	if err := run([]string{"-n", "300", "-queries", "5", "-churn", "10", "-repair", "-format", "prom"}, &prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE repair_sessions_total counter",
		"# TYPE repair_symbols_total counter",
		"# TYPE repair_bytes_total counter",
		"# TYPE repair_events_moved_total counter",
		"# TYPE repair_convergence_ms summary",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom output missing %q", want)
		}
	}

	var js strings.Builder
	if err := run([]string{"-n", "300", "-queries", "5", "-churn", "10", "-repair", "-format", "json"}, &js); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("json output: %v", err)
	}
	if !strings.Contains(js.String(), "repair_sessions_total") {
		t.Error("json output missing repair_sessions_total")
	}

	var text strings.Builder
	if err := run([]string{"-n", "300", "-queries", "5", "-churn", "10", "-repair"}, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "repair_sessions_total") {
		t.Error("text report missing repair_sessions_total")
	}
}

func TestPromFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "300", "-queries", "5", "-format", "prom"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# TYPE net_tx_frames_total counter",
		"# TYPE pool_query_fanout_cells summary",
		`net_tx_frames_total{node="0"}`,
		"pool_query_fanout_cells_count",
		"# TYPE node_mailbox_depth gauge",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// Every line must match the exposition grammar.
	line := regexp.MustCompile(`^(# (HELP|TYPE) .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})?(_sum|_count)? [^ ]+)$`)
	for _, l := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if !line.MatchString(l) {
			t.Errorf("bad exposition line: %q", l)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "300", "-queries", "5", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Families []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range doc.Families {
		names[f.Name] = true
	}
	for _, want := range []string{"net_tx_frames_total", "pool_stored_events", "discovery_beacons_total", "node_stored_events"} {
		if !names[want] {
			t.Errorf("json export missing family %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-tick", "0s"}, &out); err == nil {
		t.Error("zero tick accepted")
	}
	if err := run([]string{"-churn", "95"}, &out); err == nil {
		t.Error("out-of-range churn accepted")
	}
	if err := run([]string{"stray"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
