package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperimentText(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "fig6b"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 6", "DIM", "Pool", "300"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-format", "csv", "fig7a"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Query,DIM,Pool") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if !strings.Contains(got, "1-Partial,") {
		t.Errorf("CSV row missing:\n%s", got)
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-format", "markdown", "insert"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "| NetworkSize | DIM | Pool |") {
		t.Errorf("markdown table missing:\n%s", got)
	}
	if !strings.HasPrefix(got, "### ") {
		t.Errorf("markdown heading missing:\n%s", got)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "poolsize", "energy"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "side-length") || !strings.Contains(got, "energy footprint") {
		t.Errorf("missing experiment outputs:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no experiment accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-format", "xml", "fig6a"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-trace-ring", "-1", "saturation"}, &out); err == nil {
		t.Error("negative trace ring accepted")
	}
}

// TestRunTraceRing: a tiny flight recorder must still produce a valid
// saturation table — eviction degrades the attribution columns, never
// the run.
func TestRunTraceRing(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-trace-ring", "512", "saturation"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "queue%") {
		t.Errorf("saturation table missing attribution columns:\n%s", out.String())
	}
}

func TestAllCoversEveryExperiment(t *testing.T) {
	if len(order) != len(experiments) {
		t.Fatalf("order lists %d experiments, map has %d", len(order), len(experiments))
	}
	for _, name := range order {
		if _, ok := experiments[name]; !ok {
			t.Errorf("ordered name %q missing from the experiment map", name)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("300, 600,900")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 300 || got[2] != 900 {
		t.Errorf("parseSizes = %v", got)
	}
	if _, err := parseSizes("300,abc"); err == nil {
		t.Error("garbage size accepted")
	}
	if _, err := parseSizes("1"); err == nil {
		t.Error("size below 2 accepted")
	}
}

func TestRunCustomSizes(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-sizes", "300", "fig6b"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "300") || strings.Contains(got, "600") {
		t.Errorf("custom sizes not honoured:\n%s", got)
	}
	if err := run([]string{"-sizes", "x", "fig6b"}, &out); err == nil {
		t.Error("bad -sizes accepted")
	}
}
