// Command poolsim regenerates the paper's evaluation figures and this
// repository's ablations from the command line.
//
// Usage:
//
//	poolsim [flags] <experiment>...
//
// Experiments: fig6a, fig6b, fig7a, fig7b, insert, hotspot, poolsize,
// pointquery, aggregate, energy, loadbalance, fragmentation,
// dissemination, resilience, churn, dimsweep, variance, placement,
// eventload, latency, asynclatency, asyncscale, lossy, saturation, all.
//
// Flags:
//
//	-seed N      random seed (default 42)
//	-queries N   queries per data point (default 100)
//	-sizes LIST  comma-separated network sizes for the fig6 sweeps
//	-quick       fewer queries, smaller sweep (smoke run)
//	-parallel N  worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential)
//	-repair-period D  anti-entropy round interval for the churn experiment (default 5s)
//	-backend B   storage backend for the resilience sweep: pool (synchronous
//	             spec, default) or node (event-driven actor engine)
//	-repair      with -backend=node: mirror every cell and restore crashed
//	             state through message-driven repair exchanges
//	-trace-ring N  flight-recorder capacity in events for the churn and
//	             saturation attribution columns (0 = default 262144)
//	-format F    text | csv | markdown (default text)
//	-debug-addr A  serve net/http/pprof and Prometheus /metrics on A while running
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pooldcs/internal/experiment"
	"pooldcs/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poolsim:", err)
		os.Exit(1)
	}
}

// runner executes one named experiment under a config.
type runner func(cfg experiment.Config) (*experiment.Result, error)

var experiments = map[string]runner{
	"fig6a": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Fig6(cfg, workload.UniformSizes)
	},
	"fig6b": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Fig6(cfg, workload.ExponentialSizes)
	},
	"fig7a":  experiment.Fig7a,
	"fig7b":  experiment.Fig7b,
	"insert": experiment.InsertCost,
	"hotspot": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Hotspot(cfg, 20)
	},
	"poolsize": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.PoolSize(cfg, []int{5, 10, 15, 20})
	},
	"pointquery":    experiment.PointQuery,
	"aggregate":     experiment.Aggregates,
	"energy":        experiment.Energy,
	"loadbalance":   experiment.LoadBalance,
	"dissemination": experiment.Dissemination,
	"dimsweep": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.DimSweep(cfg, []int{2, 3, 4, 5})
	},
	"variance": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Variance(cfg, 5)
	},
	"placement": experiment.Placement,
	"eventload": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.EventLoad(cfg, []int{1, 3, 6, 10})
	},
	"latency":      experiment.Latency,
	"asynclatency": experiment.AsyncLatency,
	"asyncscale": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.AsyncScale(cfg, []int{900, 1800, 3600})
	},
	"lossy": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Lossy(cfg, []float64{0, 0.1, 0.2, 0.3})
	},
	"resilience": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Resilience(cfg, []int{5, 10, 20, 30})
	},
	"churn": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Churn(cfg, []int{0, 5, 10, 20})
	},
	"fragmentation": experiment.Fragmentation,
	"saturation": func(cfg experiment.Config) (*experiment.Result, error) {
		return experiment.Saturation(cfg, []float64{25, 50, 100, 200, 400})
	},
}

// order lists the experiments in report order for "all".
var order = []string{
	"fig6a", "fig6b", "fig7a", "fig7b",
	"insert", "hotspot", "poolsize", "pointquery", "aggregate",
	"energy", "loadbalance", "fragmentation", "dissemination", "resilience", "churn", "dimsweep", "variance", "placement", "eventload", "latency", "asynclatency", "asyncscale", "lossy", "saturation",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poolsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "random seed")
	queries := fs.Int("queries", 100, "queries per data point")
	sizes := fs.String("sizes", "", "comma-separated network sizes for the fig6 sweeps (default 300,600,900,1200)")
	quick := fs.Bool("quick", false, "smoke run: fewer queries per point")
	parallel := fs.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); tables are identical at any setting")
	repairPeriod := fs.Duration("repair-period", 0, "anti-entropy reconciliation round interval for the churn experiment (0 = default 5s)")
	backend := fs.String("backend", "pool", "storage backend for the resilience sweep: pool (synchronous spec) or node (actor engine)")
	repair := fs.Bool("repair", false, "with -backend=node: mirror cells and restore crashes via message-driven repair")
	traceRing := fs.Int("trace-ring", 0, "flight-recorder capacity in events for the attribution columns (0 = default 262144)")
	format := fs.String("format", "text", "output format: text, csv, or markdown")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and /metrics on this address while running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := fs.Args()
	if len(names) == 0 {
		return fmt.Errorf("no experiment given; choose from: %s, all", strings.Join(order, ", "))
	}
	if len(names) == 1 && names[0] == "all" {
		names = order
	}

	cfg := experiment.Default()
	if *quick {
		cfg = experiment.Quick()
	}
	cfg.Seed = *seed
	if !*quick {
		cfg.Queries = *queries
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.NetworkSizes = parsed
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be ≥ 0, got %d", *parallel)
	}
	cfg.Parallel = *parallel
	if *repairPeriod < 0 {
		return fmt.Errorf("-repair-period must be ≥ 0, got %v", *repairPeriod)
	}
	cfg.RepairPeriod = *repairPeriod
	switch *backend {
	case "pool", "node":
		cfg.Backend = *backend
	default:
		return fmt.Errorf("unknown backend %q; choose pool or node", *backend)
	}
	if *repair && *backend != "node" {
		return fmt.Errorf("-repair requires -backend=node (the pool backend always compares both)")
	}
	cfg.Repair = *repair
	if *traceRing < 0 {
		return fmt.Errorf("-trace-ring must be ≥ 0, got %d", *traceRing)
	}
	cfg.TraceRing = *traceRing

	var dbg *debugServer
	if *debugAddr != "" {
		var err error
		if dbg, err = newDebugServer(*debugAddr); err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer dbg.close()
		fmt.Fprintf(os.Stderr, "poolsim: debug server on http://%s (/metrics, /debug/pprof/)\n", dbg.addr())
	}

	for _, name := range names {
		r, ok := experiments[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; choose from: %s, all", name, strings.Join(order, ", "))
		}
		start := time.Now()
		res, err := r(cfg)
		dbg.record(time.Since(start), err != nil)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch *format {
		case "text":
			fmt.Fprintln(out, res.Table.String())
		case "csv":
			fmt.Fprintf(out, "# %s\n%s\n", res.Title, res.Table.CSV())
		case "markdown":
			fmt.Fprintf(out, "### %s\n\n%s\n", res.Title, res.Table.Markdown())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}

// parseSizes parses a comma-separated list of positive network sizes.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad network size %q: %w", part, err)
		}
		if n < 2 {
			return nil, fmt.Errorf("network size %d too small", n)
		}
		out = append(out, n)
	}
	return out, nil
}
