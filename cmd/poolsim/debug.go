package main

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"pooldcs/internal/metrics"
)

// debugServer serves net/http/pprof and a Prometheus-style /metrics
// endpoint while experiments run, so long regenerations (-debug-addr
// localhost:6060; poolsim all takes minutes) can be profiled and
// watched live. The registry holds poolsim's own process metrics;
// access is guarded by mu because the metrics package is not
// goroutine-safe and the HTTP handlers run off the main goroutine.
type debugServer struct {
	mu  sync.Mutex
	reg *metrics.Registry
	ln  net.Listener

	experiments *metrics.Counter
	failures    *metrics.Counter
	durations   *metrics.Histogram
}

// newDebugServer binds addr (host:port; port 0 picks a free one) and
// starts serving in the background. Close the listener to stop.
func newDebugServer(addr string) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := metrics.New()
	s := &debugServer{reg: reg, ln: ln}
	s.experiments = reg.Counter("poolsim_experiments_total", "experiments completed by this process")
	s.failures = reg.Counter("poolsim_experiment_failures_total", "experiments that returned an error")
	s.durations = reg.Histogram("poolsim_experiment_duration_ms", "wall-clock runtime per experiment")

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return s, nil
}

// addr returns the bound address (useful when the port was 0).
func (s *debugServer) addr() string { return s.ln.Addr().String() }

// close stops the listener.
func (s *debugServer) close() { _ = s.ln.Close() }

// record books one finished experiment.
func (s *debugServer) record(d time.Duration, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.experiments.Inc()
	if failed {
		s.failures.Inc()
	}
	s.durations.Observe(d.Milliseconds())
}

// serveMetrics renders the registry in the Prometheus text exposition.
func (s *debugServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := s.reg.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = snap.WriteTo(w)
}
