package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden locks the exact output of the seeded quick runs: any change
// to placement, routing, resolving, or cost accounting shows up as a
// golden diff. Regenerate intentionally with:
//
//	go test ./cmd/poolsim -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fig6b", []string{"-quick", "fig6b"}},
		{"fig7b", []string{"-quick", "fig7b"}},
		{"insert", []string{"-quick", "insert"}},
		{"pointquery", []string{"-quick", "pointquery"}},
		{"churn", []string{"-quick", "churn"}},
		{"resilience-node", []string{"-quick", "-backend=node", "-repair", "resilience"}},
		{"loadbalance", []string{"-quick", "loadbalance"}},
		{"asyncscale", []string{"-quick", "asyncscale"}},
		{"saturation", []string{"-quick", "saturation"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
