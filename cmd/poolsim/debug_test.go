package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServer exercises the -debug-addr endpoints end to end: a
// run with the flag serves the process metrics and the pprof index
// over real HTTP, and the recorded counters reflect the experiments
// that ran.
func TestDebugServer(t *testing.T) {
	dbg, err := newDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.close()

	dbg.record(12*time.Millisecond, false)
	dbg.record(5*time.Millisecond, true)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("/metrics")
	for _, want := range []string{
		"# TYPE poolsim_experiments_total counter",
		"poolsim_experiments_total 2",
		"poolsim_experiment_failures_total 1",
		"poolsim_experiment_duration_ms_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", idx)
	}
	if prof := get("/debug/pprof/symbol"); prof == "" {
		t.Error("pprof symbol endpoint returned nothing")
	}
}

// TestDebugServerViaRun checks the flag is plumbed through run() and a
// nil server (flag unset) is a no-op.
func TestDebugServerViaRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-debug-addr", "127.0.0.1:0", "pointquery"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Point-query") && out.Len() == 0 {
		t.Error("experiment produced no output")
	}

	var nilDbg *debugServer
	nilDbg.record(time.Millisecond, false) // must not panic
}
