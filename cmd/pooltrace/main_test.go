package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pooldcs/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// recordAndAnalyze runs record into a temp file and returns the analyze
// report for it.
func recordAndAnalyze(t *testing.T, recordArgs, analyzeArgs []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var rec strings.Builder
	if err := run(append([]string{"record"}, append(recordArgs, "-o", path)...), &rec); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(append(append([]string{"analyze"}, analyzeArgs...), path), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// checkGolden compares got against testdata/<name>.golden, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGolden locks the analyzer report over seeded traced runs: span
// trees, hop percentiles, node ranking, and the by-kind breakdown are all
// deterministic. Regenerate intentionally with:
//
//	go test ./cmd/pooltrace -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name    string
		record  []string
		analyze []string
	}{
		{"pool", []string{"-nodes", "150", "-events", "2", "-queries", "8"}, []string{"-spans", "2", "-top", "5"}},
		{"poolsubsfail", []string{"-nodes", "150", "-events", "2", "-queries", "6", "-subs", "3", "-fail", "2"}, []string{"-spans", "1", "-top", "5"}},
		{"dim", []string{"-system", "dim", "-nodes", "150", "-events", "2", "-queries", "8"}, []string{"-spans", "2", "-top", "5"}},
		{"node", []string{"-system", "node", "-nodes", "150", "-events", "2", "-queries", "8"}, []string{"-spans", "2", "-top", "5"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, tc.name, recordAndAnalyze(t, tc.record, tc.analyze))
		})
	}
}

// TestGoldenAutopsy locks the autopsy report end-to-end: record a node
// trace to JSONL, run the autopsy subcommand on the file, compare the
// blame table and worst-offender decompositions byte-for-byte.
func TestGoldenAutopsy(t *testing.T) {
	cases := []struct {
		name    string
		record  []string
		autopsy []string
	}{
		{"autopsy_node", []string{"-system", "node", "-nodes", "150", "-events", "2", "-queries", "12"}, []string{"-worst", "2"}},
		{"autopsy_node_fail", []string{"-system", "node", "-nodes", "150", "-events", "2", "-queries", "12", "-fail", "4", "-seed", "7"}, []string{"-worst", "2"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "trace.jsonl")
			var rec strings.Builder
			if err := run(append([]string{"record"}, append(tc.record, "-o", path)...), &rec); err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			if err := run(append(append([]string{"autopsy"}, tc.autopsy...), path), &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out.String())
		})
	}
}

func TestRecordWritesValidJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	err := run([]string{"record", "-nodes", "150", "-events", "1", "-queries", "2", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded ") {
		t.Errorf("no summary line: %q", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if _, err := trace.Analyze(events); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no command accepted")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"record", "stray"}, &out); err == nil {
		t.Error("record with positional arg accepted")
	}
	if err := run([]string{"analyze"}, &out); err == nil {
		t.Error("analyze without a file accepted")
	}
	if err := run([]string{"analyze", "/nonexistent/trace.jsonl"}, &out); err == nil {
		t.Error("analyze on missing file accepted")
	}
	if err := run([]string{"record", "-system", "cuckoo", "-o", "-"}, &out); err == nil {
		t.Error("unknown system accepted")
	}
	if err := run([]string{"autopsy"}, &out); err == nil {
		t.Error("autopsy without a file accepted")
	}
	if err := run([]string{"autopsy", "/nonexistent/trace.jsonl"}, &out); err == nil {
		t.Error("autopsy on missing file accepted")
	}
}
