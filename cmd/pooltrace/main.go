// Command pooltrace records and analyzes structured simulation traces.
//
// Usage:
//
//	pooltrace record [flags] -o trace.jsonl
//	pooltrace analyze [flags] trace.jsonl
//	pooltrace autopsy [flags] trace.jsonl
//
// record replays a seeded insert+query workload (the poolsim simulation
// model) with tracing enabled and writes the trace as JSONL, one event
// per line. analyze loads a trace and reports per-query span trees,
// hop-count percentiles per operation, per-node load ranking, and the
// traffic breakdown by kind — which matches network.Counters exactly.
// autopsy decomposes each query's wall clock into named phases
// (transmit, arq, queue, service, retry, repair, merge, other), prints
// the blame table — which phase owns the latency mass at p50/p95/p99 —
// and details the worst offenders. The node system records on the actor
// engine's virtual clock, so its traces carry the real durations the
// autopsy needs; pool and dim replay synchronously and decompose to
// zeros.
//
// record flags:
//
//	-system S   pool | dim | node (default pool)
//	-seed N     random seed (default 42)
//	-nodes N    deployment size (default 300)
//	-events N   events per node (default 3)
//	-queries N  queries (default 40)
//	-subs N     standing queries, Pool only (default 0)
//	-fail N     node failures before the queries, pool and node (default 0)
//	-o PATH     output path, "-" for stdout (default "-")
//
// analyze flags:
//
//	-spans N    query span trees to print (default 3)
//	-top N      nodes in the load ranking (default 10)
//
// autopsy flags:
//
//	-worst N    slowest queries to detail (default 3)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"pooldcs/internal/attrib"
	"pooldcs/internal/experiment"
	"pooldcs/internal/texttable"
	"pooldcs/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pooltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("no command given; choose record, analyze, or autopsy")
	}
	switch args[0] {
	case "record":
		return record(args[1:], out)
	case "analyze":
		return analyze(args[1:], out)
	case "autopsy":
		return autopsy(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q; choose record, analyze, or autopsy", args[0])
	}
}

// record replays a traced workload and writes the JSONL trace.
func record(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pooltrace record", flag.ContinueOnError)
	o := experiment.DefaultTraceOptions()
	fs.StringVar(&o.System, "system", o.System, "traced system: pool, dim, or node")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "random seed")
	fs.IntVar(&o.Nodes, "nodes", o.Nodes, "deployment size")
	fs.IntVar(&o.EventsPerNode, "events", o.EventsPerNode, "events per node")
	fs.IntVar(&o.Queries, "queries", o.Queries, "number of queries")
	fs.IntVar(&o.Subscriptions, "subs", 0, "standing queries (Pool only)")
	fs.IntVar(&o.Failures, "fail", 0, "node failures before the queries (pool and node)")
	path := fs.String("o", "-", `output path ("-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("record takes no positional arguments")
	}

	res, err := experiment.TraceRun(o)
	if err != nil {
		return err
	}
	w := out
	if *path != "-" {
		f, err := os.Create(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteJSONL(w, res.Events); err != nil {
		return err
	}
	if *path != "-" {
		fmt.Fprintf(out, "recorded %d events (%d messages, %d query results) to %s\n",
			len(res.Events), res.Counters.Total(), res.Matches, *path)
	}
	return nil
}

// analyze loads a JSONL trace and prints the report.
func analyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pooltrace analyze", flag.ContinueOnError)
	spans := fs.Int("spans", 3, "query span trees to print")
	top := fs.Int("top", 10, "nodes in the load ranking")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze takes exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	a, err := trace.Analyze(events)
	if err != nil {
		return err
	}
	return report(out, a, *spans, *top)
}

// autopsy loads a JSONL trace, attributes every query span's wall
// clock to phases, and prints the blame table plus the worst offenders.
func autopsy(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pooltrace autopsy", flag.ContinueOnError)
	worst := fs.Int("worst", 3, "slowest queries to detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("autopsy takes exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	a, err := trace.Analyze(events)
	if err != nil {
		return err
	}
	return autopsyReport(out, events, a, *worst)
}

// autopsyReport renders the attribution: header, blame table, and the
// per-phase decomposition of the slowest queries.
func autopsyReport(out io.Writer, events []trace.Event, a *trace.Analysis, worst int) error {
	bds := attrib.Attribute(events, a, attrib.Options{})
	repairs := attrib.RepairWindows(events, a.Horizon)
	fmt.Fprintf(out, "autopsy: %d queries attributed, %d repair windows, horizon %v",
		len(bds), len(repairs), a.Horizon)
	if a.Truncated {
		fmt.Fprint(out, " (trace truncated: flight recorder evicted events)")
	}
	fmt.Fprint(out, "\n\n")
	if len(bds) == 0 {
		fmt.Fprintln(out, "no query spans in trace")
		return nil
	}

	fmt.Fprintln(out, attrib.Blame(bds).String())

	sorted := make([]attrib.Breakdown, len(bds))
	copy(sorted, bds)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Total != sorted[j].Total {
			return sorted[i].Total > sorted[j].Total
		}
		return sorted[i].Span < sorted[j].Span
	})
	if worst > len(sorted) {
		worst = len(sorted)
	}
	if worst <= 0 {
		return nil
	}
	fmt.Fprintf(out, "worst %d queries:\n", worst)
	for i := 0; i < worst; i++ {
		bd := &sorted[i]
		fmt.Fprintf(out, "  span %d %s node=%d %q: total %v [%v, %v]\n",
			bd.Span, bd.Op, bd.Node, bd.Detail, bd.Total, bd.Start, bd.End)
		for _, p := range attrib.Phases() {
			d := bd.Phases[p]
			if d == 0 {
				continue
			}
			fmt.Fprintf(out, "    %-9s %12v %5.1f%%\n", p, d, 100*float64(d)/float64(bd.Total))
		}
		if s := a.ByID[bd.Span]; s != nil {
			if err := s.WriteTree(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// report renders the analysis: traffic by kind, per-operation hop
// percentiles, node load ranking, and the first few query span trees.
func report(out io.Writer, a *trace.Analysis, spans, top int) error {
	fmt.Fprintf(out, "trace: %d events, %d spans, horizon %v\n\n",
		a.Events, len(a.ByID), a.Horizon)

	kinds := texttable.New("Traffic by kind", "kind", "msgs", "bytes", "lost")
	var frames, bytes, lost uint64
	for _, k := range a.Kinds() {
		kt := a.ByKind[k]
		frames += kt.Frames
		bytes += kt.Bytes
		lost += kt.Lost
		kinds.AddRow(k, fmt.Sprint(kt.Frames), fmt.Sprint(kt.Bytes), fmt.Sprint(kt.Lost))
	}
	kinds.AddRow("total", fmt.Sprint(frames), fmt.Sprint(bytes), fmt.Sprint(lost))
	fmt.Fprintln(out, kinds.String())
	if a.BackgroundFrames > 0 {
		fmt.Fprintf(out, "background (unspanned) messages: %d\n\n", a.BackgroundFrames)
	}

	ops := texttable.New("Hops per operation", "op", "count", "mean", "p50", "p95", "p99", "max")
	for _, op := range []trace.Op{trace.OpInsert, trace.OpQuery, trace.OpSubscribe, trace.OpFail} {
		h := a.HopHistogram(op)
		if h.Total() == 0 {
			continue
		}
		ops.AddRow(string(op), fmt.Sprint(h.Total()), texttable.Float(h.Mean(), 1),
			fmt.Sprint(h.Quantile(50)), fmt.Sprint(h.Quantile(95)),
			fmt.Sprint(h.Quantile(99)), fmt.Sprint(h.Max()))
	}
	fmt.Fprintln(out, ops.String())

	if a.Horizon > 0 {
		lat := texttable.New("Latency per operation (virtual ms)", "op", "count", "p50", "p95", "p99", "max")
		for _, op := range []trace.Op{trace.OpInsert, trace.OpQuery} {
			h := a.DurationHistogram(op)
			if h.Total() == 0 {
				continue
			}
			lat.AddRow(string(op), fmt.Sprint(h.Total()),
				fmt.Sprint(h.Quantile(50)), fmt.Sprint(h.Quantile(95)),
				fmt.Sprint(h.Quantile(99)), fmt.Sprint(h.Max()))
		}
		fmt.Fprintln(out, lat.String())
	}

	ranking := a.NodeRanking()
	if top > len(ranking) {
		top = len(ranking)
	}
	loads := texttable.New(fmt.Sprintf("Top %d nodes by traffic", top), "node", "tx", "rx", "total")
	for _, n := range ranking[:top] {
		loads.AddRow(fmt.Sprint(n.Node), fmt.Sprint(n.Tx), fmt.Sprint(n.Rx), fmt.Sprint(n.Total()))
	}
	fmt.Fprintln(out, loads.String())

	queries := a.RootsByOp(trace.OpQuery)
	if spans > len(queries) {
		spans = len(queries)
	}
	if spans > 0 {
		fmt.Fprintf(out, "first %d query spans:\n", spans)
		for _, s := range queries[:spans] {
			if err := s.WriteTree(out); err != nil {
				return err
			}
		}
	}
	return nil
}
