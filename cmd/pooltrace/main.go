// Command pooltrace records and analyzes structured simulation traces.
//
// Usage:
//
//	pooltrace record [flags] -o trace.jsonl
//	pooltrace analyze [flags] trace.jsonl
//
// record replays a seeded insert+query workload (the poolsim simulation
// model) with tracing enabled and writes the trace as JSONL, one event
// per line. analyze loads a trace and reports per-query span trees,
// hop-count percentiles per operation, per-node load ranking, and the
// traffic breakdown by kind — which matches network.Counters exactly.
//
// record flags:
//
//	-system S   pool | dim (default pool)
//	-seed N     random seed (default 42)
//	-nodes N    deployment size (default 300)
//	-events N   events per node (default 3)
//	-queries N  queries (default 40)
//	-subs N     standing queries, Pool only (default 0)
//	-fail N     node failures before the queries, Pool only (default 0)
//	-o PATH     output path, "-" for stdout (default "-")
//
// analyze flags:
//
//	-spans N    query span trees to print (default 3)
//	-top N      nodes in the load ranking (default 10)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pooldcs/internal/experiment"
	"pooldcs/internal/texttable"
	"pooldcs/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pooltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("no command given; choose record or analyze")
	}
	switch args[0] {
	case "record":
		return record(args[1:], out)
	case "analyze":
		return analyze(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q; choose record or analyze", args[0])
	}
}

// record replays a traced workload and writes the JSONL trace.
func record(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pooltrace record", flag.ContinueOnError)
	o := experiment.DefaultTraceOptions()
	fs.StringVar(&o.System, "system", o.System, "traced system: pool or dim")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "random seed")
	fs.IntVar(&o.Nodes, "nodes", o.Nodes, "deployment size")
	fs.IntVar(&o.EventsPerNode, "events", o.EventsPerNode, "events per node")
	fs.IntVar(&o.Queries, "queries", o.Queries, "number of queries")
	fs.IntVar(&o.Subscriptions, "subs", 0, "standing queries (Pool only)")
	fs.IntVar(&o.Failures, "fail", 0, "node failures before the queries (Pool only)")
	path := fs.String("o", "-", `output path ("-" for stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("record takes no positional arguments")
	}

	res, err := experiment.TraceRun(o)
	if err != nil {
		return err
	}
	w := out
	if *path != "-" {
		f, err := os.Create(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteJSONL(w, res.Events); err != nil {
		return err
	}
	if *path != "-" {
		fmt.Fprintf(out, "recorded %d events (%d messages, %d query results) to %s\n",
			len(res.Events), res.Counters.Total(), res.Matches, *path)
	}
	return nil
}

// analyze loads a JSONL trace and prints the report.
func analyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pooltrace analyze", flag.ContinueOnError)
	spans := fs.Int("spans", 3, "query span trees to print")
	top := fs.Int("top", 10, "nodes in the load ranking")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze takes exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	a, err := trace.Analyze(events)
	if err != nil {
		return err
	}
	return report(out, a, *spans, *top)
}

// report renders the analysis: traffic by kind, per-operation hop
// percentiles, node load ranking, and the first few query span trees.
func report(out io.Writer, a *trace.Analysis, spans, top int) error {
	fmt.Fprintf(out, "trace: %d events, %d spans, horizon %v\n\n",
		a.Events, len(a.ByID), a.Horizon)

	kinds := texttable.New("Traffic by kind", "kind", "msgs", "bytes", "lost")
	var frames, bytes, lost uint64
	for _, k := range a.Kinds() {
		kt := a.ByKind[k]
		frames += kt.Frames
		bytes += kt.Bytes
		lost += kt.Lost
		kinds.AddRow(k, fmt.Sprint(kt.Frames), fmt.Sprint(kt.Bytes), fmt.Sprint(kt.Lost))
	}
	kinds.AddRow("total", fmt.Sprint(frames), fmt.Sprint(bytes), fmt.Sprint(lost))
	fmt.Fprintln(out, kinds.String())
	if a.BackgroundFrames > 0 {
		fmt.Fprintf(out, "background (unspanned) messages: %d\n\n", a.BackgroundFrames)
	}

	ops := texttable.New("Hops per operation", "op", "count", "mean", "p50", "p95", "p99", "max")
	for _, op := range []trace.Op{trace.OpInsert, trace.OpQuery, trace.OpSubscribe, trace.OpFail} {
		h := a.HopHistogram(op)
		if h.Total() == 0 {
			continue
		}
		ops.AddRow(string(op), fmt.Sprint(h.Total()), texttable.Float(h.Mean(), 1),
			fmt.Sprint(h.Quantile(50)), fmt.Sprint(h.Quantile(95)),
			fmt.Sprint(h.Quantile(99)), fmt.Sprint(h.Max()))
	}
	fmt.Fprintln(out, ops.String())

	if a.Horizon > 0 {
		lat := texttable.New("Latency per operation (virtual ms)", "op", "count", "p50", "p95", "p99", "max")
		for _, op := range []trace.Op{trace.OpInsert, trace.OpQuery} {
			h := a.DurationHistogram(op)
			if h.Total() == 0 {
				continue
			}
			lat.AddRow(string(op), fmt.Sprint(h.Total()),
				fmt.Sprint(h.Quantile(50)), fmt.Sprint(h.Quantile(95)),
				fmt.Sprint(h.Quantile(99)), fmt.Sprint(h.Max()))
		}
		fmt.Fprintln(out, lat.String())
	}

	ranking := a.NodeRanking()
	if top > len(ranking) {
		top = len(ranking)
	}
	loads := texttable.New(fmt.Sprintf("Top %d nodes by traffic", top), "node", "tx", "rx", "total")
	for _, n := range ranking[:top] {
		loads.AddRow(fmt.Sprint(n.Node), fmt.Sprint(n.Tx), fmt.Sprint(n.Rx), fmt.Sprint(n.Total()))
	}
	fmt.Fprintln(out, loads.String())

	queries := a.RootsByOp(trace.OpQuery)
	if spans > len(queries) {
		spans = len(queries)
	}
	if spans > 0 {
		fmt.Fprintf(out, "first %d query spans:\n", spans)
		for _, s := range queries[:spans] {
			if err := s.WriteTree(out); err != nil {
				return err
			}
		}
	}
	return nil
}
