package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pooldcs
cpu: Generic x86-64
BenchmarkFig6aQueryCost/n=300-8         	       1	  51234567 ns/op	        41.20 dim-msgs/query	        12.30 pool-msgs/query
BenchmarkTransmit-8   	 5000000	       231.4 ns/op	      48 B/op	       1 allocs/op
PASS
ok  	pooldcs	3.210s
goos: linux
goarch: amd64
pkg: pooldcs/internal/metrics
BenchmarkDisabledHotPath
BenchmarkDisabledHotPath-8	1000000000	         0.7587 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pooldcs/internal/metrics	1.002s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Generic x86-64" {
		t.Errorf("context lines mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	fig := rep.Benchmarks[0]
	if fig.Name != "BenchmarkFig6aQueryCost/n=300" || fig.Pkg != "pooldcs" || fig.Procs != 8 {
		t.Errorf("fig6a header mis-parsed: %+v", fig)
	}
	if fig.NsPerOp != 51234567 || fig.Metrics["dim-msgs/query"] != 41.2 || fig.Metrics["pool-msgs/query"] != 12.3 {
		t.Errorf("fig6a values mis-parsed: %+v", fig)
	}

	tx := rep.Benchmarks[1]
	if tx.Iterations != 5000000 || tx.NsPerOp != 231.4 || *tx.BytesPerOp != 48 || *tx.AllocsPerOp != 1 {
		t.Errorf("transmit values mis-parsed: %+v", tx)
	}

	hot := rep.Benchmarks[2]
	if hot.Pkg != "pooldcs/internal/metrics" || hot.NsPerOp != 0.7587 || *hot.AllocsPerOp != 0 {
		t.Errorf("hot-path values mis-parsed: %+v", hot)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-o", path, "-date", "2026-08-05"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON written: %v", err)
	}
	if rep.Date != "2026-08-05" || rep.Go == "" || len(rep.Benchmarks) != 3 {
		t.Errorf("report fields wrong: date=%q go=%q n=%d", rep.Date, rep.Go, len(rep.Benchmarks))
	}
}

// writeReport marshals a Report into a temp file for compare/gate tests.
func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func f64(v float64) *float64 { return &v }

func TestCompareReports(t *testing.T) {
	oldPath := writeReport(t, Report{Date: "2026-08-01", Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 1000, BytesPerOp: f64(800), AllocsPerOp: f64(100)},
		{Pkg: "pooldcs", Name: "BenchmarkOldOnly", NsPerOp: 5},
	}})
	newPath := writeReport(t, Report{Date: "2026-08-05", Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 500, BytesPerOp: f64(800), AllocsPerOp: f64(35)},
		{Pkg: "pooldcs", Name: "BenchmarkNewOnly", NsPerOp: 7},
	}})

	var out strings.Builder
	if err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"-50.00%", "-65.00%", "allocs/op", "B/op", "~"} {
		if !strings.Contains(got, want) {
			t.Errorf("compare output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "BenchmarkOldOnly") || strings.Contains(got, "BenchmarkNewOnly") {
		t.Errorf("unmatched benchmarks leaked into compare output:\n%s", got)
	}

	if err := run([]string{"-compare", oldPath}, strings.NewReader(""), &out); err == nil {
		t.Error("-compare with one file accepted")
	}
	disjoint := writeReport(t, Report{Benchmarks: []Benchmark{{Pkg: "x", Name: "BenchmarkZ", NsPerOp: 1}}})
	if err := run([]string{"-compare", oldPath, disjoint}, strings.NewReader(""), &out); err == nil {
		t.Error("disjoint reports accepted")
	}
}

func TestGateReport(t *testing.T) {
	baseline := writeReport(t, Report{Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 1000, AllocsPerOp: f64(100)},
	}})

	// Within tolerance passes.
	var out strings.Builder
	stream := "pkg: pooldcs\nBenchmarkFig6a-8 1 900 ns/op 10 B/op 105 allocs/op\n"
	if err := run([]string{"-gate", baseline}, strings.NewReader(stream), &out); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("gate output missing ok status:\n%s", out.String())
	}

	// Past tolerance fails.
	stream = "pkg: pooldcs\nBenchmarkFig6a-8 1 900 ns/op 10 B/op 120 allocs/op\n"
	err := run([]string{"-gate", baseline}, strings.NewReader(stream), &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds baseline") {
		t.Errorf("regression not caught: %v", err)
	}

	// A tighter tolerance flips the first stream to failing.
	stream = "pkg: pooldcs\nBenchmarkFig6a-8 1 900 ns/op 10 B/op 105 allocs/op\n"
	if err := run([]string{"-gate", baseline, "-tolerance", "2"}, strings.NewReader(stream), &out); err == nil {
		t.Error("tolerance flag ignored")
	}

	// Baseline benchmarks missing from the stream fail the gate.
	if err := run([]string{"-gate", baseline}, strings.NewReader("PASS\n"), &out); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("missing benchmark not caught: %v", err)
	}
}

func TestGateNsPerOp(t *testing.T) {
	baseline := writeReport(t, Report{Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 1000, AllocsPerOp: f64(100)},
	}})

	// ns/op regression invisible by default (time gating is opt-in).
	var out strings.Builder
	stream := "pkg: pooldcs\nBenchmarkFig6a-8 1000 5000 ns/op 10 B/op 100 allocs/op\n"
	if err := run([]string{"-gate", baseline}, strings.NewReader(stream), &out); err != nil {
		t.Fatalf("ns regression gated without opt-in: %v", err)
	}

	// -ns-tolerance turns it on globally.
	err := run([]string{"-gate", baseline, "-ns-tolerance", "25"}, strings.NewReader(stream), &out)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Errorf("ns regression not caught with -ns-tolerance: %v", err)
	}
	stream = "pkg: pooldcs\nBenchmarkFig6a-8 1000 1100 ns/op 10 B/op 100 allocs/op\n"
	if err := run([]string{"-gate", baseline, "-ns-tolerance", "25"}, strings.NewReader(stream), &out); err != nil {
		t.Errorf("within-tolerance ns run failed: %v", err)
	}

	// A per-benchmark ns_tolerance_pct overrides the flag (tighter here).
	strict := writeReport(t, Report{Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 1000, AllocsPerOp: f64(100), NsTolerancePct: f64(5)},
	}})
	err = run([]string{"-gate", strict, "-ns-tolerance", "50"}, strings.NewReader(stream), &out)
	if err == nil || !strings.Contains(err.Error(), "5%") {
		t.Errorf("per-benchmark tolerance did not override flag: %v", err)
	}

	// An ns-only baseline entry (no allocs) still gates time.
	nsOnly := writeReport(t, Report{Benchmarks: []Benchmark{
		{Pkg: "pooldcs", Name: "BenchmarkFig6a", NsPerOp: 1000, NsTolerancePct: f64(5)},
	}})
	stream = "pkg: pooldcs\nBenchmarkFig6a-8 1000 2000 ns/op\n"
	if err := run([]string{"-gate", nsOnly}, strings.NewReader(stream), &out); err == nil {
		t.Error("ns-only baseline did not gate")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"stray"}, strings.NewReader(""), &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 10 12\n")); err == nil {
		t.Error("odd value/unit tail accepted")
	}
}
