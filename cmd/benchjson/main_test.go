package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pooldcs
cpu: Generic x86-64
BenchmarkFig6aQueryCost/n=300-8         	       1	  51234567 ns/op	        41.20 dim-msgs/query	        12.30 pool-msgs/query
BenchmarkTransmit-8   	 5000000	       231.4 ns/op	      48 B/op	       1 allocs/op
PASS
ok  	pooldcs	3.210s
goos: linux
goarch: amd64
pkg: pooldcs/internal/metrics
BenchmarkDisabledHotPath
BenchmarkDisabledHotPath-8	1000000000	         0.7587 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pooldcs/internal/metrics	1.002s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Generic x86-64" {
		t.Errorf("context lines mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	fig := rep.Benchmarks[0]
	if fig.Name != "BenchmarkFig6aQueryCost/n=300" || fig.Pkg != "pooldcs" || fig.Procs != 8 {
		t.Errorf("fig6a header mis-parsed: %+v", fig)
	}
	if fig.NsPerOp != 51234567 || fig.Metrics["dim-msgs/query"] != 41.2 || fig.Metrics["pool-msgs/query"] != 12.3 {
		t.Errorf("fig6a values mis-parsed: %+v", fig)
	}

	tx := rep.Benchmarks[1]
	if tx.Iterations != 5000000 || tx.NsPerOp != 231.4 || *tx.BytesPerOp != 48 || *tx.AllocsPerOp != 1 {
		t.Errorf("transmit values mis-parsed: %+v", tx)
	}

	hot := rep.Benchmarks[2]
	if hot.Pkg != "pooldcs/internal/metrics" || hot.NsPerOp != 0.7587 || *hot.AllocsPerOp != 0 {
		t.Errorf("hot-path values mis-parsed: %+v", hot)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-o", path, "-date", "2026-08-05"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -o: %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON written: %v", err)
	}
	if rep.Date != "2026-08-05" || rep.Go == "" || len(rep.Benchmarks) != 3 {
		t.Errorf("report fields wrong: date=%q go=%q n=%d", rep.Date, rep.Go, len(rep.Benchmarks))
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"stray"}, strings.NewReader(""), &out); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 notanumber 12 ns/op\n")); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkBroken-8 10 12\n")); err == nil {
		t.Error("odd value/unit tail accepted")
	}
}
