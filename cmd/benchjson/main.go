// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be archived and
// diffed across commits (see `make bench`, which writes
// BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson [-o report.json]
//
// Reads the benchmark stream on stdin. Context lines (goos, goarch,
// pkg, cpu) are folded into the enclosing benchmarks; custom
// ReportMetric units (e.g. "dim-msgs/query") land in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date stamped into the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Date = *date
	rep.Go = runtime.Version()

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse consumes a `go test -bench` stream and collects the result
// lines. Unknown lines (PASS, ok, test log output) are skipped.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	var pkg string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if b != nil {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8  100  123.4 ns/op  56 B/op  7 allocs/op  8.9 custom/unit
//
// A bare "BenchmarkName" line (the pre-announcement go test prints when
// -v is set) has no fields and is skipped by returning nil.
func parseBench(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b.Iterations = iters

	// The rest is (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[i])
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}
