// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark runs can be archived and
// diffed across commits (see `make bench`, which writes
// BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson [-o report.json]
//	benchjson -compare old.json new.json
//	go test -bench=... -benchmem | benchjson -gate baseline.json [-tolerance 10]
//
// Reads the benchmark stream on stdin. Context lines (goos, goarch,
// pkg, cpu) are folded into the enclosing benchmarks; custom
// ReportMetric units (e.g. "dim-msgs/query") land in the metrics map.
//
// -compare prints a benchstat-style delta table (ns/op, B/op,
// allocs/op) between two archived reports. -gate parses a fresh bench
// stream from stdin and fails when any benchmark's allocs/op regresses
// more than -tolerance percent over the baseline report, or its ns/op
// regresses past its time tolerance. Time gating is opt-in — wall time
// is only meaningful at stable iteration counts (never -benchtime=1x) —
// and the tolerance resolves per benchmark: a "ns_tolerance_pct" field
// in the baseline entry wins, else the -ns-tolerance flag, else 0
// (disabled).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// NsTolerancePct, set by hand in a baseline report, overrides the
	// -ns-tolerance flag for this benchmark during -gate. Benchmarks with
	// inherently noisy timing carry a wide tolerance (or none) while tight
	// nanosecond-scale kernels gate strictly.
	NsTolerancePct *float64 `json:"ns_tolerance_pct,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write the JSON report to this file instead of stdout")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date stamped into the report")
	compare := fs.Bool("compare", false, "compare two archived reports: benchjson -compare old.json new.json")
	gate := fs.String("gate", "", "baseline report; fail when stdin's allocs/op regress past -tolerance")
	tolerance := fs.Float64("tolerance", 10, "allowed allocs/op regression in percent for -gate")
	nsTolerance := fs.Float64("ns-tolerance", 0, "allowed ns/op regression in percent for -gate (0 disables; per-benchmark ns_tolerance_pct in the baseline overrides)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report files, got %d", fs.NArg())
		}
		return compareReports(fs.Arg(0), fs.Arg(1), stdout)
	}
	if *gate != "" {
		if fs.NArg() > 0 {
			return fmt.Errorf("unexpected argument %q", fs.Arg(0))
		}
		return gateReport(in, *gate, *tolerance, *nsTolerance, stdout)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	rep.Date = *date
	rep.Go = runtime.Version()

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse consumes a `go test -bench` stream and collects the result
// lines. Unknown lines (PASS, ok, test log output) are skipped.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	var pkg string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if b != nil {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8  100  123.4 ns/op  56 B/op  7 allocs/op  8.9 custom/unit
//
// A bare "BenchmarkName" line (the pre-announcement go test prints when
// -v is set) has no fields and is skipped by returning nil.
func parseBench(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b.Iterations = iters

	// The rest is (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit tail %v", rest)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[i])
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// loadReport reads an archived JSON report from disk.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies a benchmark across reports. Pkg is included so
// same-named benchmarks in different packages never collide.
func benchKey(b Benchmark) string { return b.Pkg + "\x00" + b.Name }

// delta renders a benchstat-style percentage change.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+∞"
	}
	pct := (new - old) / old * 100
	if math.Abs(pct) < 0.005 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", pct)
}

// compareReports prints per-unit delta sections (ns/op, B/op,
// allocs/op) for benchmarks present in both reports, in the new
// report's order.
func compareReports(oldPath, newPath string, out io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[benchKey(b)] = b
	}

	sections := []struct {
		unit string
		get  func(Benchmark) (float64, bool)
	}{
		{"ns/op", func(b Benchmark) (float64, bool) { return b.NsPerOp, true }},
		{"B/op", func(b Benchmark) (float64, bool) {
			if b.BytesPerOp == nil {
				return 0, false
			}
			return *b.BytesPerOp, true
		}},
		{"allocs/op", func(b Benchmark) (float64, bool) {
			if b.AllocsPerOp == nil {
				return 0, false
			}
			return *b.AllocsPerOp, true
		}},
	}

	fmt.Fprintf(out, "old: %s (%s)\nnew: %s (%s)\n", oldPath, oldRep.Date, newPath, newRep.Date)
	matched := 0
	for _, sec := range sections {
		var rows [][4]string
		for _, nb := range newRep.Benchmarks {
			ob, ok := oldBy[benchKey(nb)]
			if !ok {
				continue
			}
			ov, ook := sec.get(ob)
			nv, nok := sec.get(nb)
			if !ook || !nok {
				continue
			}
			rows = append(rows, [4]string{
				nb.Name,
				strconv.FormatFloat(ov, 'f', -1, 64),
				strconv.FormatFloat(nv, 'f', -1, 64),
				delta(ov, nv),
			})
		}
		if len(rows) == 0 {
			continue
		}
		matched += len(rows)
		tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "\nname\told %s\tnew %s\tdelta\n", sec.unit, sec.unit)
		for _, row := range rows {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", row[0], row[1], row[2], row[3])
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if matched == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	return nil
}

// gateReport parses a fresh bench stream and fails when any baseline
// benchmark's allocs/op regressed more than tolerance percent, or its
// ns/op regressed past that benchmark's effective time tolerance
// (ns_tolerance_pct in the baseline, else the global nsTolerance, else
// disabled). Baseline benchmarks missing from the stream fail too, so
// the gate cannot rot silently when a benchmark is renamed.
func gateReport(in io.Reader, baselinePath string, tolerance, nsTolerance float64, out io.Writer) error {
	base, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	cur, err := parse(in)
	if err != nil {
		return err
	}
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[benchKey(b)] = b
	}

	var failures []string
	checked := 0
	for _, bb := range base.Benchmarks {
		nsTol := nsTolerance
		if bb.NsTolerancePct != nil {
			nsTol = *bb.NsTolerancePct
		}
		gateNs := nsTol > 0 && bb.NsPerOp > 0
		if bb.AllocsPerOp == nil && !gateNs {
			continue
		}
		cb, ok := curBy[benchKey(bb)]
		if !ok || (bb.AllocsPerOp != nil && cb.AllocsPerOp == nil) {
			failures = append(failures, fmt.Sprintf("%s: missing from current run (or run without -benchmem)", bb.Name))
			continue
		}
		checked++
		if bb.AllocsPerOp != nil {
			limit := *bb.AllocsPerOp * (1 + tolerance/100)
			status := "ok"
			if *cb.AllocsPerOp > limit {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %g allocs/op exceeds baseline %g by more than %g%%",
					bb.Name, *cb.AllocsPerOp, *bb.AllocsPerOp, tolerance))
			}
			fmt.Fprintf(out, "%-40s baseline %10g  current %10g  (%s)  %s allocs/op\n",
				bb.Name, *bb.AllocsPerOp, *cb.AllocsPerOp, delta(*bb.AllocsPerOp, *cb.AllocsPerOp), status)
		}
		if gateNs {
			limit := bb.NsPerOp * (1 + nsTol/100)
			status := "ok"
			if cb.NsPerOp > limit {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %g ns/op exceeds baseline %g by more than %g%%",
					bb.Name, cb.NsPerOp, bb.NsPerOp, nsTol))
			}
			fmt.Fprintf(out, "%-40s baseline %10g  current %10g  (%s)  %s ns/op (tol %g%%)\n",
				bb.Name, bb.NsPerOp, cb.NsPerOp, delta(bb.NsPerOp, cb.NsPerOp), status, nsTol)
		}
	}
	if checked == 0 && len(failures) == 0 {
		return fmt.Errorf("baseline %s has nothing to gate on (no allocs/op entries, no ns tolerances)", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
