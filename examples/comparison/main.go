// Comparison: run the same event and query workload through Pool, DIM,
// and GHT side by side — a miniature of the paper's §5 evaluation plus the
// §1 context that GHT handles only exact-match point queries.
package main

import (
	"errors"
	"fmt"
	"log"

	"pooldcs/internal/dcs"
	"pooldcs/internal/event"
	"pooldcs/internal/experiment"
	"pooldcs/internal/ght"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
	"pooldcs/internal/texttable"
	"pooldcs/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 600
	src := rng.New(7)
	env, err := experiment.NewEnv(nodes, 3, src)
	if err != nil {
		return err
	}
	ghtNet := network.New(env.Layout)
	g := ght.New(ghtNet, env.Router)

	// Shared event population, inserted into all three systems.
	events := experiment.GenerateEvents(env.Layout, 3,
		workload.NewUniformEvents(src.Fork("events"), 3))
	if err := env.InsertAll(events); err != nil {
		return err
	}
	for _, pe := range events {
		if err := g.Insert(pe.Origin, pe.Event); err != nil {
			return err
		}
	}
	fmt.Printf("%d events inserted into Pool, DIM, and GHT over %d nodes\n\n", len(events), nodes)

	// Range queries: Pool and DIM answer them; GHT cannot (§1).
	qgen := workload.NewQueries(src.Fork("queries"), 3)
	sinkSrc := src.Fork("sinks")
	queries := make([]experiment.PlacedQuery, 50)
	for i := range queries {
		queries[i] = experiment.PlacedQuery{
			Sink:  sinkSrc.Intn(nodes),
			Query: qgen.ExactMatch(workload.ExponentialSizes),
		}
	}
	poolAvg, dimAvg, err := env.QueryCosts(queries)
	if err != nil {
		return err
	}

	if _, err := g.Query(0, queries[0].Query); !errors.Is(err, ght.ErrUnsupported) {
		return fmt.Errorf("GHT unexpectedly accepted a range query: %v", err)
	}

	table := texttable.New("Exact-match range queries (avg messages/query)",
		"System", "Cost", "Note")
	table.AddRow("Pool", texttable.Float(poolAvg, 1), "")
	table.AddRow("DIM", texttable.Float(dimAvg, 1), "")
	table.AddRow("GHT", "-", "range queries unsupported")
	fmt.Println(table)

	// Point queries: all three can answer those.
	pickSrc := src.Fork("picks")
	var poolPt, dimPt, ghtPt float64
	const pointQueries = 50
	for i := 0; i < pointQueries; i++ {
		target := events[pickSrc.Intn(len(events))].Event
		ranges := make([]event.Range, 3)
		for j, v := range target.Values {
			ranges[j] = event.PointRange(v)
		}
		q := event.NewQuery(ranges...)
		sink := sinkSrc.Intn(nodes)

		cost := func(net *network.Network, run func() error) (float64, error) {
			before := net.Snapshot()
			if err := run(); err != nil {
				return 0, err
			}
			d := net.Diff(before)
			return float64(d.Messages[network.KindQuery] + d.Messages[network.KindReply]), nil
		}
		c, err := cost(env.PoolNet, func() error { _, err := env.Pool.Query(sink, q); return err })
		if err != nil {
			return err
		}
		poolPt += c
		c, err = cost(env.DIMNet, func() error { _, err := env.DIM.Query(sink, q); return err })
		if err != nil {
			return err
		}
		dimPt += c
		c, err = cost(ghtNet, func() error { _, err := g.Query(sink, q); return err })
		if err != nil {
			return err
		}
		ghtPt += c
	}

	table2 := texttable.New("Exact-match point queries (avg messages/query)", "System", "Cost")
	table2.AddRow("GHT", texttable.Float(ghtPt/pointQueries, 1))
	table2.AddRow("DIM", texttable.Float(dimPt/pointQueries, 1))
	table2.AddRow("Pool", texttable.Float(poolPt/pointQueries, 1))
	fmt.Println(table2)

	ins := func(net *network.Network) string {
		r := dcs.Report(net.Snapshot())
		return texttable.Float(float64(r.InsertMessages)/float64(len(events)), 1)
	}
	table3 := texttable.New("Insertion (avg messages/event)", "System", "Cost")
	table3.AddRow("GHT", ins(ghtNet))
	table3.AddRow("DIM", ins(env.DIMNet))
	table3.AddRow("Pool", ins(env.PoolNet))
	fmt.Println(table3)
	return nil
}
