// Environmental monitoring: the paper's motivating scenario (§1). Sensors
// measure temperature, humidity, and barometric pressure; an operator asks
// domain questions that translate into the four query classes of §2.
//
// Raw readings live in physical units and are normalized into [0,1) before
// entering the DCS layer, as the paper's data model assumes.
package main

import (
	"fmt"
	"log"

	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/pool"
	"pooldcs/internal/rng"
)

// attribute describes one measured quantity and its physical range.
type attribute struct {
	name     string
	min, max float64
	unit     string
}

var attrs = []attribute{
	{name: "temperature", min: -10, max: 50, unit: "°C"},
	{name: "humidity", min: 0, max: 100, unit: "%"},
	{name: "pressure", min: 950, max: 1050, unit: "hPa"},
}

// normalize maps a physical reading into [0, 1).
func (a attribute) normalize(v float64) float64 {
	n := (v - a.min) / (a.max - a.min)
	return rng.Clamp01(n)
}

// span builds a normalized query range from physical bounds.
func (a attribute) span(lo, hi float64) event.Range {
	return event.Span(a.normalize(lo), a.normalize(hi))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(20260705)
	layout, err := field.Generate(field.DefaultSpec(600), src.Fork("layout"))
	if err != nil {
		return err
	}
	net := network.New(layout)
	sys, err := pool.New(net, gpsr.New(layout), len(attrs), src.Fork("pivots"))
	if err != nil {
		return err
	}

	// A day of weather: mild morning, hot dry noon, a pressure drop as a
	// storm front arrives in the evening.
	gen := src.Fork("weather")
	seq := uint64(0)
	sample := func(node int, tempC, humPct, presHPa float64) error {
		seq++
		e := event.Event{
			Values: []float64{
				attrs[0].normalize(tempC + gen.Normal(0, 1.5)),
				attrs[1].normalize(humPct + gen.Normal(0, 4)),
				attrs[2].normalize(presHPa + gen.Normal(0, 2)),
			},
			Seq: seq,
		}
		return sys.Insert(node, e)
	}
	for node := 0; node < layout.N(); node++ {
		if err := sample(node, 14, 70, 1018); err != nil { // morning
			return err
		}
		if err := sample(node, 33, 30, 1014); err != nil { // noon
			return err
		}
		if err := sample(node, 22, 85, 988); err != nil { // storm front
			return err
		}
	}
	fmt.Printf("%d sensors reported %d readings\n", layout.N(), seq)

	sink := 0
	ask := func(what string, q event.Query) error {
		before := net.Snapshot()
		matches, err := sys.Query(sink, q)
		if err != nil {
			return err
		}
		d := net.Diff(before)
		fmt.Printf("%-58s → %4d readings, %4d messages\n",
			what, len(matches), d.Messages[network.KindQuery]+d.Messages[network.KindReply])
		return nil
	}

	// Type 3: exact-match range query over all attributes.
	if err := ask("heat stress: T in [30,40]°C and humidity below 40%",
		event.NewQuery(attrs[0].span(30, 40), attrs[1].span(0, 40), attrs[2].span(950, 1050))); err != nil {
		return err
	}

	// Type 4: partial-match range query — the common case (§2).
	if err := ask("storm watch: pressure below 1000 hPa (others don't care)",
		event.NewQuery(event.Unspecified(), event.Unspecified(), attrs[2].span(950, 1000))); err != nil {
		return err
	}

	if err := ask("fog risk: humidity in [80,100]% (others don't care)",
		event.NewQuery(event.Unspecified(), attrs[1].span(80, 100), event.Unspecified())); err != nil {
		return err
	}

	// Aggregates ride the splitter tree with constant-size partials.
	stormy := event.NewQuery(event.Unspecified(), event.Unspecified(), attrs[2].span(950, 1000))
	n, err := sys.Aggregate(sink, stormy, pool.AggCount, 0)
	if err != nil {
		return err
	}
	avgT, err := sys.Aggregate(sink, stormy, pool.AggAvg, 1)
	if err != nil {
		return err
	}
	// De-normalize the answer back to physical units.
	tempC := attrs[0].min + avgT*(attrs[0].max-attrs[0].min)
	fmt.Printf("during low pressure: %d readings, average temperature %.1f %s\n",
		int(n), tempC, attrs[0].unit)
	return nil
}
