// Monitoring: the paper's §6 extensions in action — continuous queries
// that push matching events to a sink as they are sensed, and
// nearest-neighbour queries over the stored data. A control room
// subscribes to "freezer out of range" alerts while sensors stream
// readings.
package main

import (
	"fmt"
	"log"

	"pooldcs"
	"pooldcs/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim, err := pooldcs.NewSimulation(pooldcs.Config{Nodes: 400, Seed: 11})
	if err != nil {
		return err
	}
	const controlRoom = 0

	// Standing alert: attribute 1 (normalized freezer temperature) drifts
	// above 0.7 — regardless of the other attributes.
	alert, err := sim.Subscribe(controlRoom,
		pooldcs.Span(0.7, 1), pooldcs.Wildcard(), pooldcs.Wildcard())
	if err != nil {
		return err
	}
	fmt.Printf("control room (node %d) subscribed: temp ≥ 0.7 (subscription %d)\n",
		controlRoom, alert.ID)

	// Sensors stream readings; most are nominal, a few are hot.
	src := rng.New(12)
	hot := 0
	for i := 0; i < 1000; i++ {
		temp := src.Float64() * 0.69 // nominal
		if src.Bool(0.02) {
			temp = 0.7 + src.Float64()*0.29 // fault
			hot++
		}
		if _, err := sim.Insert(src.Intn(sim.Nodes()), temp, src.Float64(), src.Float64()); err != nil {
			return err
		}
	}

	notes := sim.Notifications()
	fmt.Printf("streamed 1000 readings (%d faults injected) → %d alerts pushed\n", hot, len(notes))
	if len(notes) != hot {
		return fmt.Errorf("alert mismatch: %d faults but %d alerts", hot, len(notes))
	}
	for i, n := range notes {
		if i >= 3 {
			fmt.Printf("  … and %d more\n", len(notes)-3)
			break
		}
		fmt.Printf("  alert: event %d %v\n", n.Event.Seq, n.Event)
	}

	// After the shift, the operator looks for readings most similar to a
	// suspicious profile.
	profile := []float64{0.75, 0.2, 0.5}
	similar, err := sim.Nearest(controlRoom, profile, 3)
	if err != nil {
		return err
	}
	fmt.Printf("3 readings most similar to profile %v:\n", profile)
	for _, e := range similar {
		fmt.Printf("  %v\n", e)
	}

	// Unsubscribe: no further pushes.
	if err := sim.Unsubscribe(alert); err != nil {
		return err
	}
	if _, err := sim.Insert(1, 0.95, 0.5, 0.5); err != nil {
		return err
	}
	if after := sim.Notifications(); len(after) != 0 {
		return fmt.Errorf("received %d alerts after unsubscribing", len(after))
	}
	fmt.Println("unsubscribed; no further alerts")
	fmt.Printf("total radio messages: %d\n", sim.Messages())
	return nil
}
