// Quickstart: deploy a sensor network, stand up the Pool storage scheme,
// insert multi-dimensional events, and answer exact- and partial-match
// range queries while counting radio messages.
package main

import (
	"fmt"
	"log"

	"pooldcs/internal/dcs"
	"pooldcs/internal/event"
	"pooldcs/internal/field"
	"pooldcs/internal/gpsr"
	"pooldcs/internal/network"
	"pooldcs/internal/pool"
	"pooldcs/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Deploy 300 sensors with the paper's density (≈20 neighbours in a
	//    40 m radio range) and build the GPSR routing substrate.
	src := rng.New(1)
	layout, err := field.Generate(field.DefaultSpec(300), src.Fork("layout"))
	if err != nil {
		return err
	}
	router := gpsr.New(layout)
	net := network.New(layout)
	fmt.Printf("deployed %d sensors on a %.0f m field (avg degree %.1f)\n",
		layout.N(), layout.Side, layout.AvgDegree())

	// 2. Stand up Pool for 3-dimensional events (temperature, humidity,
	//    pressure — all normalized to [0,1)).
	sys, err := pool.New(net, router, 3, src.Fork("pivots"))
	if err != nil {
		return err
	}
	for _, p := range sys.Pools() {
		fmt.Printf("  %v\n", p)
	}

	// 3. Every sensor detects a few events and stores them data-centrically.
	gen := src.Fork("events")
	seq := uint64(0)
	for node := 0; node < layout.N(); node++ {
		for i := 0; i < 3; i++ {
			seq++
			e := event.Event{
				Values: []float64{gen.Float64(), gen.Float64(), gen.Float64()},
				Seq:    seq,
			}
			if err := sys.Insert(node, e); err != nil {
				return err
			}
		}
	}
	insertCost := dcs.Report(net.Snapshot())
	fmt.Printf("inserted %d events in %d messages (%.1f msgs/event)\n",
		seq, insertCost.InsertMessages, float64(insertCost.InsertMessages)/float64(seq))

	// 4. An exact-match range query: all three attributes bounded.
	sink := 7
	exact := event.NewQuery(
		event.Span(0.2, 0.4), // temperature in [0.2, 0.4]
		event.Span(0.1, 0.6), // humidity in [0.1, 0.6]
		event.Span(0.0, 0.9), // pressure in [0.0, 0.9]
	)
	before := net.Snapshot()
	matches, err := sys.Query(sink, exact)
	if err != nil {
		return err
	}
	cost := dcs.Report(net.Diff(before))
	fmt.Printf("exact query %v → %d events, %d messages\n",
		exact, len(matches), cost.QueryMessages+cost.ReplyMessages)

	// 5. A partial-match range query: only pressure is constrained; the
	//    other attributes are "don't care" (the paper's Example 3.2).
	partial := event.NewQuery(event.Unspecified(), event.Unspecified(), event.Span(0.8, 0.84))
	before = net.Snapshot()
	matches, err = sys.Query(sink, partial)
	if err != nil {
		return err
	}
	cost = dcs.Report(net.Diff(before))
	fmt.Printf("partial query %v → %d events, %d messages\n",
		partial, len(matches), cost.QueryMessages+cost.ReplyMessages)

	// 6. Aggregates travel the same splitter tree with constant-size
	//    partials.
	avg, err := sys.Aggregate(sink, partial, pool.AggAvg, 3)
	if err != nil {
		return err
	}
	fmt.Printf("AVG(pressure) over the partial query = %.3f\n", avg)
	return nil
}
