// Hotspot: a skewed event distribution (most readings in the same value
// range) concentrates storage on a handful of nodes. This example shows
// the §4.2 workload-sharing mechanism bounding per-node load, and what it
// costs.
package main

import (
	"fmt"
	"log"
	"sort"

	"pooldcs/internal/event"
	"pooldcs/internal/experiment"
	"pooldcs/internal/network"
	"pooldcs/internal/pool"
	"pooldcs/internal/rng"
	"pooldcs/internal/texttable"
	"pooldcs/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nodes = 600
	const quota = 15 // events a node stores before delegating

	src := rng.New(99)
	env, err := experiment.NewEnv(nodes, 3, src)
	if err != nil {
		return err
	}
	sharedNet := network.New(env.Layout)
	shared, err := pool.New(sharedNet, env.Router, 3, src.Fork("pivots2"),
		pool.WithWorkloadSharing(quota))
	if err != nil {
		return err
	}

	// A wildfire scenario: nearly every sensor reports the same extreme
	// reading — high temperature, low humidity.
	gen := workload.NewHotspotEvents(src.Fork("events"), []float64{0.92, 0.15, 0.4}, 0.015)
	events := experiment.GenerateEvents(env.Layout, 3, gen)
	for _, pe := range events {
		if err := env.Pool.Insert(pe.Origin, pe.Event); err != nil {
			return err
		}
		if err := shared.Insert(pe.Origin, pe.Event); err != nil {
			return err
		}
	}
	fmt.Printf("%d skewed events inserted (plain Pool vs Pool with workload sharing)\n\n", len(events))

	describe := func(name string, loads []int, extraMsgs uint64) []string {
		sort.Sort(sort.Reverse(sort.IntSlice(loads)))
		used := 0
		for _, l := range loads {
			if l > 0 {
				used++
			}
		}
		return []string{
			name,
			texttable.Int(loads[0]),
			texttable.Int(loads[2]),
			texttable.Int(used),
			texttable.Int(int(extraMsgs)),
		}
	}

	table := texttable.New("Per-node stored events under skew",
		"System", "Max", "3rd-max", "NodesUsed", "SharingMsgs")
	table.AddRow(describe("Pool", env.Pool.StorageLoad(), 0)...)
	table.AddRow(describe(fmt.Sprintf("Pool+sharing(q=%d)", quota), shared.StorageLoad(),
		sharedNet.Snapshot().Messages[network.KindControl])...)
	fmt.Println(table)
	fmt.Printf("delegations performed: %d\n\n", shared.Delegations())

	// Queries remain correct and complete across delegated segments.
	q := event.NewQuery(event.Span(0.85, 1), event.Span(0, 0.3), event.Unspecified())
	plainRes, err := env.Pool.Query(0, q)
	if err != nil {
		return err
	}
	before := sharedNet.Snapshot()
	sharedRes, err := shared.Query(0, q)
	if err != nil {
		return err
	}
	d := sharedNet.Diff(before)
	fmt.Printf("fire-zone query: plain found %d, shared found %d (must match), %d messages with sharing\n",
		len(plainRes), len(sharedRes), d.Messages[network.KindQuery]+d.Messages[network.KindReply])
	if len(plainRes) != len(sharedRes) {
		return fmt.Errorf("result sets diverge: %d vs %d", len(plainRes), len(sharedRes))
	}
	return nil
}
