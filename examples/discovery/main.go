// Discovery: the infrastructure the paper takes as given (§2) — periodic
// beacon exchange building neighbour tables — running on the
// deterministic discrete-event kernel. The example shows convergence,
// beacon traffic, what a node failure looks like from its neighbours'
// side, and the eviction timing.
package main

import (
	"fmt"
	"log"
	"time"

	"pooldcs/internal/discovery"
	"pooldcs/internal/field"
	"pooldcs/internal/network"
	"pooldcs/internal/rng"
	"pooldcs/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(2026)
	layout, err := field.Generate(field.DefaultSpec(300), src.Fork("layout"))
	if err != nil {
		return err
	}
	sched := sim.NewScheduler()
	net := network.New(layout)
	proto := discovery.New(net, sched, src.Fork("beacons"), discovery.Config{
		Interval:  time.Second,
		MissLimit: 3,
	})
	proto.Start()

	// Let two beacon rounds pass.
	if err := sched.RunUntil(2*time.Second, 0); err != nil {
		return err
	}
	ok, diag := proto.Converged()
	fmt.Printf("t=%v: converged=%v %s\n", sched.Now(), ok, diag)
	fmt.Printf("beacons sent so far: %d (%.1f per node per round)\n",
		net.Snapshot().Messages[network.KindControl],
		float64(net.Snapshot().Messages[network.KindControl])/float64(layout.N())/2)

	// A node dies mid-operation.
	victim := 42
	witness := layout.Neighbors(victim)[0]
	fmt.Printf("\nnode %d fails at t=%v; node %d is one of its %d neighbours\n",
		victim, sched.Now(), witness, len(layout.Neighbors(victim)))
	proto.Fail(victim)

	inTable := func() bool {
		for _, v := range proto.Neighbors(witness) {
			if v == victim {
				return true
			}
		}
		return false
	}
	for _, horizon := range []time.Duration{3 * time.Second, 5 * time.Second, 10 * time.Second} {
		if err := sched.RunUntil(horizon, 0); err != nil {
			return err
		}
		fmt.Printf("t=%-4v node %d still in %d's table: %v\n",
			sched.Now(), victim, witness, inTable())
	}
	if inTable() {
		return fmt.Errorf("failed node was never evicted")
	}
	ok, diag = proto.Converged()
	if !ok {
		return fmt.Errorf("survivors inconsistent: %s", diag)
	}
	fmt.Println("\nsurvivors' tables match the oracle topology minus the failed node")

	proto.Stop()
	fmt.Printf("total events processed by the kernel: %d\n", sched.Executed())
	return nil
}
