package pooldcs

import (
	"testing"
)

func newSim(t testing.TB, cfg Config) *Simulation {
	t.Helper()
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewSimulationDefaults(t *testing.T) {
	sim := newSim(t, Config{Seed: 1})
	if sim.Nodes() != 300 {
		t.Errorf("Nodes = %d, want default 300", sim.Nodes())
	}
	if sim.Dims() != 3 {
		t.Errorf("Dims = %d, want default 3", sim.Dims())
	}
	if sim.FieldSide() <= 0 {
		t.Error("FieldSide not positive")
	}
}

func TestInsertAndQueryRoundTrip(t *testing.T) {
	sim := newSim(t, Config{Seed: 2})
	e, err := sim.Insert(10, 0.4, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq == 0 {
		t.Error("Insert did not assign a sequence number")
	}
	got, err := sim.Query(0, Span(0.35, 0.45), Span(0.25, 0.35), Span(0.05, 0.15))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != e.Seq {
		t.Fatalf("Query = %v, want the inserted event", got)
	}
	if sim.Messages() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestPartialQueryWithWildcard(t *testing.T) {
	sim := newSim(t, Config{Seed: 3})
	if _, err := sim.Insert(5, 0.2, 0.9, 0.81); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Insert(6, 0.2, 0.9, 0.2); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Query(1, Wildcard(), Wildcard(), Span(0.8, 0.84))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("partial query found %d events, want 1", len(got))
	}
}

func TestAggregateFacade(t *testing.T) {
	sim := newSim(t, Config{Seed: 4})
	vals := [][3]float64{{0.1, 0.2, 0.3}, {0.2, 0.3, 0.4}, {0.3, 0.4, 0.5}}
	for i, v := range vals {
		if _, err := sim.Insert(i, v[0], v[1], v[2]); err != nil {
			t.Fatal(err)
		}
	}
	n, err := sim.Aggregate(0, Count, 0, Span(0, 1), Span(0, 1), Span(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Count = %v, want 3", n)
	}
	avg, err := sim.Aggregate(0, Avg, 1, Span(0, 1), Span(0, 1), Span(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if avg < 0.19 || avg > 0.21 {
		t.Errorf("Avg = %v, want 0.2", avg)
	}
}

func TestBoundsChecking(t *testing.T) {
	sim := newSim(t, Config{Seed: 5})
	if _, err := sim.Insert(-1, 0.1, 0.1, 0.1); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := sim.Insert(10000, 0.1, 0.1, 0.1); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := sim.Query(-1, Span(0, 1), Span(0, 1), Span(0, 1)); err == nil {
		t.Error("negative sink accepted")
	}
	if _, err := sim.Aggregate(99999, Count, 0, Span(0, 1), Span(0, 1), Span(0, 1)); err == nil {
		t.Error("out-of-range sink accepted")
	}
	if err := sim.InsertEvent(-1, Event{Values: []float64{0.1, 0.1, 0.1}}); err == nil {
		t.Error("InsertEvent negative origin accepted")
	}
}

func TestPointHelper(t *testing.T) {
	p := Point(0.3)
	if p.L != 0.3 || p.U != 0.3 || p.Wild {
		t.Errorf("Point = %+v", p)
	}
}

func TestCostAndReset(t *testing.T) {
	sim := newSim(t, Config{Seed: 6})
	if _, err := sim.Insert(0, 0.5, 0.5, 0.25); err != nil {
		t.Fatal(err)
	}
	if c := sim.Cost(); c.InsertMessages == 0 {
		t.Error("Cost reports no insert messages")
	}
	sim.ResetCounters()
	if sim.Messages() != 0 {
		t.Error("ResetCounters did not zero traffic")
	}
	// The event is still queryable.
	got, err := sim.Query(0, Span(0.4, 0.6), Span(0.4, 0.6), Span(0.2, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("event lost after counter reset")
	}
}

func TestSharingQuotaConfig(t *testing.T) {
	sim := newSim(t, Config{Seed: 7, SharingQuota: 5})
	for i := 0; i < 40; i++ {
		if _, err := sim.Insert(i%sim.Nodes(), 0.9, 0.5, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	maxLoad := 0
	for _, l := range sim.StorageLoad() {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad > 10 {
		t.Errorf("sharing quota not honoured: max load %d", maxLoad)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		sim := newSim(t, Config{Seed: 8})
		for i := 0; i < 30; i++ {
			if _, err := sim.Insert(i, float64(i)/40, 0.5, 0.25); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sim.Query(0, Span(0, 1), Span(0, 1), Span(0, 1)); err != nil {
			t.Fatal(err)
		}
		return sim.Messages()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different traffic: %d vs %d", a, b)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := NewSimulation(Config{Nodes: 1, Seed: 1}); err == nil {
		t.Error("single-node network accepted")
	}
	if _, err := NewSimulation(Config{Seed: 1, PoolSide: 100000}); err == nil {
		t.Error("oversized pool accepted")
	}
}

func TestDeleteFacade(t *testing.T) {
	sim := newSim(t, Config{Seed: 9})
	if _, err := sim.Insert(0, 0.2, 0.2, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Insert(1, 0.8, 0.2, 0.1); err != nil {
		t.Fatal(err)
	}
	removed, err := sim.Delete(2, Span(0.7, 0.9), Wildcard(), Wildcard())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	got, err := sim.Query(2, Span(0, 1), Span(0, 1), Span(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Values[0] != 0.2 {
		t.Errorf("after delete: %v", got)
	}
	if _, err := sim.Delete(-1, Span(0, 1), Span(0, 1), Span(0, 1)); err == nil {
		t.Error("negative sink accepted")
	}
}

func TestNearestFacade(t *testing.T) {
	sim := newSim(t, Config{Seed: 10})
	if _, err := sim.Insert(0, 0.5, 0.5, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Insert(1, 0.1, 0.1, 0.05); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Nearest(2, []float64{0.5, 0.5, 0.21}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Values[0] != 0.5 {
		t.Errorf("Nearest = %v", got)
	}
	if _, err := sim.Nearest(-1, []float64{0.5, 0.5, 0.5}, 1); err == nil {
		t.Error("negative sink accepted")
	}
}

func TestSubscribeFacade(t *testing.T) {
	sim := newSim(t, Config{Seed: 11})
	sub, err := sim.Subscribe(0, Span(0.8, 1), Wildcard(), Wildcard())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Insert(1, 0.9, 0.1, 0.1); err != nil {
		t.Fatal(err)
	}
	notes := sim.Notifications()
	if len(notes) != 1 || notes[0].Sink != 0 {
		t.Fatalf("notifications = %v", notes)
	}
	if err := sim.Unsubscribe(sub); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Subscribe(-5, Span(0, 1), Span(0, 1), Span(0, 1)); err == nil {
		t.Error("negative sink accepted")
	}
}

func TestConfigKnobs(t *testing.T) {
	sim := newSim(t, Config{Seed: 20, MTU: 32, LossRate: 0.1, Clustered: true, Replicate: true})
	if _, err := sim.Insert(0, 0.4, 0.3, 0.1); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Query(1, Span(0.3, 0.5), Span(0.2, 0.4), Span(0, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query over lossy clustered network found %d events", len(got))
	}
	if _, err := NewSimulation(Config{Seed: 1, LossRate: 1.5}); err == nil {
		t.Error("loss rate ≥ 1 accepted")
	}
}
